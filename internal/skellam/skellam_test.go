package skellam

import (
	"math"
	"testing"

	"repro/internal/prg"
	"repro/internal/ring"
	"repro/internal/rng"
)

func testParams(dim, n int) Params {
	scale, err := ChooseScale(dim, 1.0, 20, n, 0.05, 3)
	if err != nil {
		panic(err)
	}
	return Params{
		Dim:          dim,
		Bits:         20,
		Clip:         1.0,
		Scale:        scale,
		Beta:         math.Exp(-0.5),
		K:            3,
		NumClients:   n,
		RotationSeed: prg.NewSeed([]byte("round-42")),
	}
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func randomUpdate(s *prg.Stream, dim int, norm float64) []float64 {
	x := make([]float64, dim)
	rng.GaussianVector(s, 1, x)
	f := norm / l2(x)
	for i := range x {
		x[i] *= f
	}
	return x
}

func TestFWHTSelfInverse(t *testing.T) {
	x := []float64{1, -2, 3, 0.5, -1, 2, 0, 7}
	y := append([]float64(nil), x...)
	fwht(y)
	fwht(y)
	for i := range x {
		if math.Abs(y[i]/float64(len(x))-x[i]) > 1e-12 {
			t.Fatalf("FWHT not self-inverse at %d: %v vs %v", i, y[i]/8, x[i])
		}
	}
}

func TestFWHTRequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fwht on non-power-of-two should panic")
		}
	}()
	fwht(make([]float64, 3))
}

func TestRotateUnrotateRoundTrip(t *testing.T) {
	seed := prg.NewSeed([]byte("rot"))
	for _, dim := range []int{1, 2, 5, 16, 100, 1000} {
		s := prg.NewStream(prg.NewSeed([]byte("x")))
		x := randomUpdate(s, dim, 1)
		y := Rotate(seed, x)
		if len(y) != nextPow2(dim) {
			t.Fatalf("rotated length %d, want %d", len(y), nextPow2(dim))
		}
		back := Unrotate(seed, y, dim)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("dim %d: round trip mismatch at %d: %v vs %v", dim, i, back[i], x[i])
			}
		}
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	seed := prg.NewSeed([]byte("norm"))
	s := prg.NewStream(prg.NewSeed([]byte("y")))
	x := randomUpdate(s, 777, 3.0)
	y := Rotate(seed, x)
	if math.Abs(l2(y)-3.0) > 1e-9 {
		t.Fatalf("rotation should preserve L2 norm: %v", l2(y))
	}
}

func TestRotateFlattens(t *testing.T) {
	// A spike vector becomes flat after rotation: max coordinate close to
	// norm/sqrt(p) rather than norm.
	seed := prg.NewSeed([]byte("flat"))
	dim := 1024
	x := make([]float64, dim)
	x[17] = 5.0
	y := Rotate(seed, x)
	maxAbs := 0.0
	for _, v := range y {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	want := 5.0 / math.Sqrt(float64(dim))
	if math.Abs(maxAbs-want) > 1e-9 {
		t.Fatalf("spike should flatten to %v, got max %v", want, maxAbs)
	}
}

func TestValidate(t *testing.T) {
	good := testParams(10, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Dim: 0, Bits: 20, Clip: 1, Scale: 1, Beta: 0.5, K: 3, NumClients: 1},
		{Dim: 1, Bits: 1, Clip: 1, Scale: 1, Beta: 0.5, K: 3, NumClients: 1},
		{Dim: 1, Bits: 20, Clip: 0, Scale: 1, Beta: 0.5, K: 3, NumClients: 1},
		{Dim: 1, Bits: 20, Clip: 1, Scale: 0, Beta: 0.5, K: 3, NumClients: 1},
		{Dim: 1, Bits: 20, Clip: 1, Scale: 1, Beta: 1.5, K: 3, NumClients: 1},
		{Dim: 1, Bits: 20, Clip: 1, Scale: 1, Beta: 0.5, K: 0, NumClients: 1},
		{Dim: 1, Bits: 20, Clip: 1, Scale: 1, Beta: 0.5, K: 3, NumClients: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEncodeDecodeSingleClient(t *testing.T) {
	p := testParams(50, 1)
	s := prg.NewStream(prg.NewSeed([]byte("client")))
	x := randomUpdate(s, p.Dim, 0.8)
	enc, err := Encode(p, x, s.Fork("round"))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(p, enc)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization error per coordinate is O(1/scale) after rotation.
	var errNorm float64
	for i := range x {
		d := dec[i] - x[i]
		errNorm += d * d
	}
	errNorm = math.Sqrt(errNorm)
	if errNorm > 0.05 {
		t.Fatalf("decode error norm %v too large (scale %v)", errNorm, p.Scale)
	}
}

func TestEncodeClipsLargeUpdates(t *testing.T) {
	p := testParams(30, 1)
	s := prg.NewStream(prg.NewSeed([]byte("big")))
	x := randomUpdate(s, p.Dim, 50.0) // far above clip bound 1
	enc, err := Encode(p, x, s.Fork("r"))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(p, enc)
	if err != nil {
		t.Fatal(err)
	}
	norm := l2(dec)
	if norm > p.Clip*1.1 {
		t.Fatalf("decoded norm %v exceeds clip bound %v", norm, p.Clip)
	}
	// Direction preserved: cosine similarity with x high.
	var dot float64
	for i := range x {
		dot += dec[i] * x[i]
	}
	cos := dot / (norm * l2(x))
	if cos < 0.99 {
		t.Fatalf("clipping should preserve direction, cos=%v", cos)
	}
}

func TestAggregationLinearity(t *testing.T) {
	// Sum of encodings decodes to (approximately) the sum of clipped
	// updates — the property secure aggregation depends on.
	const n = 8
	p := testParams(64, n)
	master := prg.NewStream(prg.NewSeed([]byte("agg")))
	want := make([]float64, p.Dim)
	var agg ring.Vector
	for c := 0; c < n; c++ {
		x := randomUpdate(master.Fork("data"), p.Dim, 0.9)
		for i := range x {
			want[i] += x[i]
		}
		enc, err := Encode(p, x, master.Fork("round"))
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			agg = enc
		} else if err := agg.AddInPlace(enc); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := Decode(p, agg)
	if err != nil {
		t.Fatal(err)
	}
	var errNorm float64
	for i := range want {
		d := dec[i] - want[i]
		errNorm += d * d
	}
	errNorm = math.Sqrt(errNorm)
	if errNorm > 0.1 {
		t.Fatalf("aggregate decode error %v too large", errNorm)
	}
}

func TestNoiseAdditionDecodesToExpectedVariance(t *testing.T) {
	// Adding integer Skellam noise of variance μ = (s·σ)² in ring space
	// must surface as model-unit noise of variance ≈ σ² per coordinate
	// after decoding (rotation is orthonormal, so variance is preserved).
	p := testParams(256, 4)
	const sigma = 0.02
	mu := p.NoiseScale(sigma * sigma)
	s := prg.NewStream(prg.NewSeed([]byte("noise")))
	zero := make([]float64, p.Dim)
	enc, err := Encode(p, zero, s.Fork("r"))
	if err != nil {
		t.Fatal(err)
	}
	noise := make([]int64, enc.Len())
	rng.SkellamVector(s.Fork("n"), mu, noise)
	if err := enc.AddSignedInPlace(noise); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(p, enc)
	if err != nil {
		t.Fatal(err)
	}
	var variance float64
	for _, v := range dec {
		variance += v * v
	}
	variance /= float64(len(dec))
	// Rounding of the zero vector adds per-coordinate variance ≤ 1/4 in
	// grid units = (0.5/s)² in model units, small vs σ² by construction.
	if variance < 0.5*sigma*sigma || variance > 2*sigma*sigma {
		t.Fatalf("decoded noise variance %v, want ≈%v", variance, sigma*sigma)
	}
}

func TestModularWraparoundRecovered(t *testing.T) {
	// Negative coordinates wrap in the ring; centering must recover them.
	p := testParams(16, 1)
	s := prg.NewStream(prg.NewSeed([]byte("neg")))
	x := make([]float64, p.Dim)
	for i := range x {
		x[i] = -0.2
	}
	enc, err := Encode(p, x, s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(p, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(dec[i]-x[i]) > 0.05 {
			t.Fatalf("negative coordinate %d: %v vs %v", i, dec[i], x[i])
		}
	}
}

func TestEncodeDimMismatch(t *testing.T) {
	p := testParams(10, 1)
	s := prg.NewStream(prg.NewSeed([]byte("dim")))
	if _, err := Encode(p, make([]float64, 11), s); err == nil {
		t.Error("dim mismatch should error")
	}
}

func TestDecodeValidation(t *testing.T) {
	p := testParams(10, 1)
	if _, err := Decode(p, ring.NewVector(20, 5)); err == nil {
		t.Error("wrong aggregate dim should error")
	}
	if _, err := Decode(p, ring.NewVector(16, p.PaddedDim())); err == nil {
		t.Error("wrong bit width should error")
	}
}

func TestInflatedClipExceedsScaledClip(t *testing.T) {
	p := testParams(100, 4)
	if p.InflatedClip() <= p.Scale*p.Clip {
		t.Error("inflated clip must exceed s·c")
	}
	d1, d2 := p.Sensitivities()
	if d1 < d2 {
		t.Error("Δ₁ ≥ Δ₂ must hold")
	}
}

func TestChooseScaleErrors(t *testing.T) {
	if _, err := ChooseScale(0, 1, 20, 4, 0.1, 3); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := ChooseScale(10, 1, 2, 1000, 0.1, 3); err == nil {
		t.Error("tiny ring with many clients should error")
	}
}

func TestChooseScaleCapacity(t *testing.T) {
	// Encode n max-norm clients plus noise; sum must not informatively
	// overflow (decode error stays small).
	const n, dim = 16, 128
	scale, err := ChooseScale(dim, 1.0, 20, n, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Dim: dim, Bits: 20, Clip: 1, Scale: scale, Beta: math.Exp(-0.5), K: 3,
		NumClients: n, RotationSeed: prg.NewSeed([]byte("cap"))}
	s := prg.NewStream(prg.NewSeed([]byte("capdata")))
	want := make([]float64, dim)
	var agg ring.Vector
	for c := 0; c < n; c++ {
		x := randomUpdate(s.Fork("d"), dim, 1.0)
		for i := range x {
			want[i] += x[i]
		}
		enc, err := Encode(p, x, s.Fork("r"))
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			agg = enc
		} else {
			agg.AddInPlace(enc)
		}
	}
	dec, err := Decode(p, agg)
	if err != nil {
		t.Fatal(err)
	}
	var errNorm float64
	for i := range want {
		d := dec[i] - want[i]
		errNorm += d * d
	}
	if math.Sqrt(errNorm) > 0.2 {
		t.Fatalf("capacity violated: decode error %v", math.Sqrt(errNorm))
	}
}

func BenchmarkEncode10k(b *testing.B) {
	p := testParams(10000, 16)
	s := prg.NewStream(prg.NewSeed([]byte("bench")))
	x := randomUpdate(s, p.Dim, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p, x, s.Fork("r")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotate1M(b *testing.B) {
	seed := prg.NewSeed([]byte("rotbench"))
	x := make([]float64, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rotate(seed, x)
	}
}
