// Package skellam implements the DSkellam client-side encoding and
// server-side decoding used by Dordis's distributed-DP prototype (paper §5:
// "employs the distributed DP protocol with DSkellam [6]").
//
// The pipeline follows Agarwal, Kairouz & Liu (NeurIPS 2021):
//
//	clip → randomized Hadamard rotation → scale → conditional stochastic
//	rounding → (Skellam noise, added by the XNoise layer) → wrap in ℤ_{2^b}
//
// and the decoder reverses it:
//
//	center mod 2^b → unscale → inverse rotation.
//
// All encoded vectors live in ring.Vector so that SecAgg masking, XNoise
// addition/removal, and aggregation operate on the same representation.
// Parameters mirror the paper's configuration (§6.1): signal-bound
// multiplier k = 3, rounding bias β = e^-0.5, bit width b = 20.
package skellam

import (
	"fmt"
	"math"

	"repro/internal/prg"
	"repro/internal/ring"
)

// Params configures the DSkellam codec for one training task. The same
// Params value must be used by every client and the server within a round.
type Params struct {
	Dim        int     // model dimension before padding
	Bits       uint    // ring bit width b
	Clip       float64 // L2 clipping bound c (model units)
	Scale      float64 // granularity scale s: model units → integer grid
	Beta       float64 // conditional-rounding bias β (e.g. e^-0.5)
	K          float64 // signal bound multiplier k
	NumClients int     // n, clients summed per round (for capacity checks)

	// RotationSeed drives the shared randomized Hadamard rotation; all
	// parties in a round must agree on it (the server broadcasts it).
	RotationSeed prg.Seed
}

// PaddedDim returns the power-of-two dimension after Hadamard padding.
func (p Params) PaddedDim() int { return nextPow2(p.Dim) }

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Dim <= 0:
		return fmt.Errorf("skellam: Dim must be positive, got %d", p.Dim)
	case p.Bits < 2 || p.Bits > 63:
		return fmt.Errorf("skellam: Bits %d out of [2,63]", p.Bits)
	case p.Clip <= 0:
		return fmt.Errorf("skellam: Clip must be positive, got %v", p.Clip)
	case p.Scale <= 0:
		return fmt.Errorf("skellam: Scale must be positive, got %v", p.Scale)
	case p.Beta <= 0 || p.Beta >= 1:
		return fmt.Errorf("skellam: Beta %v out of (0,1)", p.Beta)
	case p.K <= 0:
		return fmt.Errorf("skellam: K must be positive, got %v", p.K)
	case p.NumClients <= 0:
		return fmt.Errorf("skellam: NumClients must be positive, got %d", p.NumClients)
	}
	return nil
}

// InflatedClip returns the post-rounding L2 bound c̃ in integer-grid units.
// Conditional stochastic rounding retries until the rounded vector
// satisfies ‖z‖₂ ≤ c̃, where (following the DDGauss/DSkellam analysis)
//
//	c̃² = (s·c)² + p/4 + √(2·ln(1/β)) · (s·c + √p/2)
//
// with p the padded dimension. c̃ is the L2 sensitivity Δ₂ used for
// accounting.
func (p Params) InflatedClip() float64 {
	sc := p.Scale * p.Clip
	pd := float64(p.PaddedDim())
	c2 := sc*sc + pd/4 + math.Sqrt(2*math.Log(1/p.Beta))*(sc+math.Sqrt(pd)/2)
	return math.Sqrt(c2)
}

// Sensitivities returns the (Δ₁, Δ₂) integer-grid sensitivities for RDP
// accounting: Δ₂ = c̃ and Δ₁ ≤ min(c̃·√p, c̃²) (Cauchy–Schwarz and
// integrality, respectively).
func (p Params) Sensitivities() (delta1, delta2 float64) {
	d2 := p.InflatedClip()
	d1 := math.Min(d2*math.Sqrt(float64(p.PaddedDim())), d2*d2)
	return d1, d2
}

// NoiseScale converts a central noise variance expressed in model units
// (σ², what the DP planner works with when using continuous semantics)
// into the integer-grid Skellam variance μ = (s·σ)² = s²·σ².
func (p Params) NoiseScale(sigma2 float64) float64 {
	return p.Scale * p.Scale * sigma2
}

// ChooseScale returns the largest granularity scale s such that the sum of
// n encoded client vectors plus central noise of std centralSigma (model
// units) fits the signed ring range [−2^(b−1), 2^(b−1)) with k-sigma slack:
//
//	n·(k·s·c/√p + 1/2) + k·s·σ ≤ 2^(b−1) − 1
//
// The left side bounds each aggregate coordinate: after rotation every
// client coordinate is subgaussian with scale s·c/√p, rounding adds ±1/2,
// and the noise contributes k standard deviations of s·σ.
func ChooseScale(dim int, clip float64, bits uint, nClients int, centralSigma, k float64) (float64, error) {
	if dim <= 0 || clip <= 0 || nClients <= 0 || k <= 0 {
		return 0, fmt.Errorf("skellam: invalid ChooseScale arguments")
	}
	pd := float64(nextPow2(dim))
	capacity := float64(int64(1)<<(bits-1)) - 1 - float64(nClients)/2
	if capacity <= 0 {
		return 0, fmt.Errorf("skellam: ring of %d bits cannot hold %d clients", bits, nClients)
	}
	denom := float64(nClients)*k*clip/math.Sqrt(pd) + k*centralSigma
	if denom <= 0 {
		return 0, fmt.Errorf("skellam: degenerate scale denominator")
	}
	return capacity / denom, nil
}

// clipL2 returns x scaled (if necessary) to have L2 norm at most c.
func clipL2(x []float64, c float64) []float64 {
	var norm2 float64
	for _, v := range x {
		norm2 += v * v
	}
	norm := math.Sqrt(norm2)
	out := make([]float64, len(x))
	if norm <= c || norm == 0 {
		copy(out, x)
		return out
	}
	f := c / norm
	for i, v := range x {
		out[i] = v * f
	}
	return out
}

// maxRoundingAttempts bounds the conditional-rounding retry loop. The
// acceptance probability is ≥ 1−β by construction, so hitting the bound
// has probability ≤ β^attempts (≈ 1e-9 for β=e^-0.5).
const maxRoundingAttempts = 40

// stochasticRound rounds y coordinate-wise to integers, rounding up with
// probability equal to the fractional part, retrying until the result's L2
// norm is within bound. It returns an error only if the retry budget is
// exhausted, which indicates misconfigured parameters.
func stochasticRound(s *prg.Stream, y []float64, bound float64) ([]int64, error) {
	out := make([]int64, len(y))
	b2 := bound * bound
	for attempt := 0; attempt < maxRoundingAttempts; attempt++ {
		var norm2 float64
		for i, v := range y {
			fl := math.Floor(v)
			frac := v - fl
			z := int64(fl)
			if s.Float64() < frac {
				z++
			}
			out[i] = z
			norm2 += float64(z) * float64(z)
		}
		if norm2 <= b2 {
			return out, nil
		}
	}
	return nil, fmt.Errorf("skellam: conditional rounding failed after %d attempts (bound %v)", maxRoundingAttempts, bound)
}

// Encode transforms a raw model update (model units, length Dim) into the
// masked-aggregation input space ℤ_{2^b}^p. Noise is NOT added here — the
// XNoise layer adds its decomposed components on top, so that Orig, XNoise,
// and the rebasing baseline can share one codec. rnd drives the stochastic
// rounding and is private to the client.
func Encode(p Params, x []float64, rnd *prg.Stream) (ring.Vector, error) {
	if err := p.Validate(); err != nil {
		return ring.Vector{}, err
	}
	if len(x) != p.Dim {
		return ring.Vector{}, fmt.Errorf("skellam: input dim %d, want %d", len(x), p.Dim)
	}
	clipped := clipL2(x, p.Clip)
	rot := Rotate(p.RotationSeed, clipped)
	for i := range rot {
		rot[i] *= p.Scale
	}
	z, err := stochasticRound(rnd, rot, p.InflatedClip())
	if err != nil {
		return ring.Vector{}, err
	}
	v := ring.NewVector(p.Bits, len(z))
	if err := v.AddSignedInPlace(z); err != nil {
		return ring.Vector{}, err
	}
	return v, nil
}

// Decode maps an aggregated ring vector back to model units: center the
// residues, unscale, inverse-rotate, truncate padding. The result is the
// SUM of the client updates (plus noise); the caller averages.
func Decode(p Params, agg ring.Vector) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if agg.Len() != p.PaddedDim() {
		return nil, fmt.Errorf("skellam: aggregate dim %d, want padded %d", agg.Len(), p.PaddedDim())
	}
	if agg.Bits != p.Bits {
		return nil, fmt.Errorf("skellam: aggregate bits %d, want %d", agg.Bits, p.Bits)
	}
	centered := agg.Centered()
	y := make([]float64, len(centered))
	inv := 1 / p.Scale
	for i, v := range centered {
		y[i] = float64(v) * inv
	}
	return Unrotate(p.RotationSeed, y, p.Dim), nil
}
