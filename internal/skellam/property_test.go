package skellam

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prg"
)

// TestEncodeDecodeErrorBoundProperty: for any update within the clip
// bound, the decode error of a single encoding is bounded by the
// quantization budget — ‖decode(encode(x)) − x‖₂ ≤ √p / (2·scale) · safety.
func TestEncodeDecodeErrorBoundProperty(t *testing.T) {
	f := func(seedWord uint64, dimRaw uint8, normRaw uint8) bool {
		dim := int(dimRaw%100) + 2
		norm := 0.1 + float64(normRaw%90)/100 // within clip 1
		p := testParams(dim, 4)
		var sb [8]byte
		for i := range sb {
			sb[i] = byte(seedWord >> (8 * i))
		}
		s := prg.NewStream(prg.NewSeed(sb[:]))
		x := randomUpdate(s, dim, norm)
		enc, err := Encode(p, x, s.Fork("round"))
		if err != nil {
			return false
		}
		dec, err := Decode(p, enc)
		if err != nil {
			return false
		}
		var errNorm float64
		for i := range x {
			d := dec[i] - x[i]
			errNorm += d * d
		}
		errNorm = math.Sqrt(errNorm)
		// Rounding moves each padded coordinate by < 1 grid unit; in model
		// units the error norm is ≤ √p/scale (loose but always valid).
		bound := math.Sqrt(float64(p.PaddedDim())) / p.Scale
		return errNorm <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRotationLinearityProperty: Rotate is linear, so rotating the sum
// equals summing the rotations — the property that makes chunked
// aggregation of rotated vectors meaningful.
func TestRotationLinearityProperty(t *testing.T) {
	seed := prg.NewSeed([]byte("lin"))
	f := func(a, b int8) bool {
		x := []float64{float64(a), 1, -2, float64(b), 0.5}
		y := []float64{0.25, float64(b), 3, -1, float64(a)}
		sum := make([]float64, len(x))
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		rx := Rotate(seed, x)
		ry := Rotate(seed, y)
		rsum := Rotate(seed, sum)
		for i := range rsum {
			if math.Abs(rsum[i]-(rx[i]+ry[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSensitivityMonotoneInScale: the inflated clip (Δ₂) grows with the
// scale, as the accounting requires.
func TestSensitivityMonotoneInScale(t *testing.T) {
	base := testParams(64, 4)
	small := base
	small.Scale = base.Scale / 2
	_, d2Small := small.Sensitivities()
	_, d2Base := base.Sensitivities()
	if d2Small >= d2Base {
		t.Errorf("Δ₂ should grow with scale: %v (s/2) vs %v", d2Small, d2Base)
	}
}
