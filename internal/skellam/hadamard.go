package skellam

import (
	"fmt"
	"math"

	"repro/internal/prg"
)

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fwht performs the in-place fast Walsh–Hadamard transform of x, whose
// length must be a power of two. The transform is self-inverse up to a
// factor of len(x); callers normalize by 1/sqrt(len) to make it orthonormal.
func fwht(x []float64) {
	n := len(x)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("skellam: fwht length %d is not a power of two", n))
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// signDiagonal expands a ±1 diagonal of the given length from the seed.
// All clients of a round share the seed, so they apply the same rotation —
// a requirement for the rotated coordinates to aggregate meaningfully.
func signDiagonal(seed prg.Seed, n int) []float64 {
	s := prg.NewStream(seed)
	d := make([]float64, n)
	var word uint64
	bits := 0
	for i := range d {
		if bits == 0 {
			word = s.Uint64()
			bits = 64
		}
		if word&1 == 1 {
			d[i] = 1
		} else {
			d[i] = -1
		}
		word >>= 1
		bits--
	}
	return d
}

// Rotate applies the seeded randomized Hadamard transform (1/√p)·H·D to x,
// padding to the next power of two p. The returned slice has length p.
//
// The rotation "flattens" the update: after HD, every coordinate is a
// ±-signed sum of all inputs, so coordinate magnitudes concentrate around
// ‖x‖₂/√p regardless of how spiky x was. That is what lets DSkellam bound
// per-coordinate ranges with the signal-bound multiplier k (paper §6.1,
// k = 3).
func Rotate(seed prg.Seed, x []float64) []float64 {
	p := nextPow2(len(x))
	buf := make([]float64, p)
	d := signDiagonal(seed, p)
	for i, v := range x {
		buf[i] = v * d[i]
	}
	fwht(buf)
	inv := 1 / math.Sqrt(float64(p))
	for i := range buf {
		buf[i] *= inv
	}
	return buf
}

// Unrotate inverts Rotate, returning the first dim coordinates:
// x = D·H·(1/√p)·y.
func Unrotate(seed prg.Seed, y []float64, dim int) []float64 {
	p := len(y)
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("skellam: Unrotate length %d is not a power of two", p))
	}
	buf := make([]float64, p)
	copy(buf, y)
	fwht(buf)
	inv := 1 / math.Sqrt(float64(p))
	d := signDiagonal(seed, p)
	out := make([]float64, dim)
	for i := 0; i < dim; i++ {
		out[i] = buf[i] * inv * d[i]
	}
	return out
}
