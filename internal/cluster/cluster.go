// Package cluster models the deployment environment of the paper's
// evaluation (§6.1): an aggregation server plus per-round sampled clients
// with heterogeneous compute and bandwidth (Zipf a = 1.2, bandwidths in
// [21, 210] Mbps), executing one distributed-DP round.
//
// The model's job is to produce the per-stage Eq.-3 coefficients
// (pipeline.PerfModel) for a scenario — protocol (SecAgg vs SecAgg+ via the
// neighbor count), model size, sampled-client count, dropout rate, XNoise
// on/off — from which the round-time experiments (Figs. 2 and 10) are
// regenerated. The paper profiles these coefficients on EC2; we derive them
// from a first-principles cost model whose constants are calibrated so the
// paper's qualitative findings hold: aggregation dominates the round
// (86–97%), SecAgg+ is cheaper than SecAgg, XNoise adds a modest overhead
// that shrinks as dropout grows, and pipelining helps more for larger
// models and more clients.
package cluster

import (
	"fmt"

	"repro/internal/pipeline"
)

// Rates holds the calibrated cost constants (seconds per unit work).
type Rates struct {
	// Client-side (slowest sampled device; the round waits for it).
	EncodePerElem       float64 // DSkellam encode, per parameter
	MaskPerElemNeighbor float64 // PRG mask expansion, per parameter per neighbor
	NoisePerElemComp    float64 // XNoise sampling, per parameter per component
	DecodePerElem       float64 // decode + apply, per parameter
	ClientBandwidthMbps float64 // slowest client's link (lower Zipf end: 21)
	ServerBandwidthMbps float64 // server NIC shared across concurrent transfers
	ServerAggPerElem    float64 // self-mask PRG regeneration + summation, per parameter per survivor
	ServerReconPerElem  float64 // mask regeneration per parameter per dropped-client neighbor
	ServerNoisePerElem  float64 // XNoise removal per parameter per survivor-component
	CommConstSeconds    float64 // per sub-task comm overhead (RTT, framing, sync)
	CompConstSeconds    float64 // per sub-task compute overhead (dispatch, GC, locks)
	InterventionSeconds float64 // Eq. 3 β₂: per-chunk cross-task interference
}

// DefaultRates returns constants calibrated to reproduce the paper's
// qualitative round-time structure at minutes scale.
func DefaultRates() Rates {
	return Rates{
		EncodePerElem:       4e-7,
		MaskPerElemNeighbor: 5e-7,
		NoisePerElemComp:    1e-7,
		DecodePerElem:       3e-7,
		ClientBandwidthMbps: 21,
		ServerBandwidthMbps: 200,
		ServerAggPerElem:    2.5e-7,
		ServerReconPerElem:  2e-8,
		ServerNoisePerElem:  2e-8,
		CommConstSeconds:    2.0,
		CompConstSeconds:    0.5,
		InterventionSeconds: 0.05,
	}
}

// Scenario describes one evaluated configuration.
type Scenario struct {
	NumSampled    int     // |U|
	Neighbors     int     // masking degree: |U|−1 for SecAgg, k for SecAgg+
	ModelParams   int64   // d
	BytesPerParam float64 // 2.5 for the 20-bit encoding
	DropoutRate   float64 // per-round d ∈ [0, 1)
	// XNoiseTolerance is T; 0 disables XNoise.
	XNoiseTolerance int
	// TrainSeconds is the non-aggregation part of the round ("other" in
	// Figs. 2/10): local training, evaluation, bookkeeping.
	TrainSeconds float64

	Rates Rates
}

// Validate checks scenario sanity.
func (s Scenario) Validate() error {
	switch {
	case s.NumSampled < 2:
		return fmt.Errorf("cluster: NumSampled %d < 2", s.NumSampled)
	case s.Neighbors < 1 || s.Neighbors > s.NumSampled-1:
		return fmt.Errorf("cluster: Neighbors %d out of [1, %d]", s.Neighbors, s.NumSampled-1)
	case s.ModelParams <= 0:
		return fmt.Errorf("cluster: ModelParams %d", s.ModelParams)
	case s.BytesPerParam <= 0:
		return fmt.Errorf("cluster: BytesPerParam %v", s.BytesPerParam)
	case s.DropoutRate < 0 || s.DropoutRate >= 1:
		return fmt.Errorf("cluster: DropoutRate %v out of [0,1)", s.DropoutRate)
	case s.XNoiseTolerance < 0 || s.XNoiseTolerance >= s.NumSampled:
		return fmt.Errorf("cluster: XNoiseTolerance %d out of [0, %d)", s.XNoiseTolerance, s.NumSampled)
	case s.TrainSeconds < 0:
		return fmt.Errorf("cluster: TrainSeconds %v", s.TrainSeconds)
	}
	return nil
}

// numDropped returns ⌊dropout·|U|⌋ clamped to the XNoise tolerance for
// removal-cost purposes.
func (s Scenario) numDropped() int {
	return int(s.DropoutRate * float64(s.NumSampled))
}

// PerfModel derives the five-stage Eq.-3 coefficients for the scenario.
//
// Per-parameter costs (β₁) per stage:
//
//	stage 1 (c-comp): DSkellam encode + (neighbors+1) mask expansions +
//	                  (T+1) XNoise component draws
//	stage 2 (comm):   slowest client upload + server ingress for |U| uploads
//	stage 3 (s-comp): aggregation over survivors + mask regeneration for
//	                  dropped clients' neighborhoods + XNoise removal of
//	                  (T−|D|) components per survivor
//	stage 4 (comm):   server egress of |U| broadcasts + slowest download
//	stage 5 (c-comp): decode + apply
func (s Scenario) PerfModel() (pipeline.PerfModel, error) {
	if err := s.Validate(); err != nil {
		return pipeline.PerfModel{}, err
	}
	r := s.Rates
	n := float64(s.NumSampled)
	dropped := float64(s.numDropped())
	survivors := n - dropped

	// Stage 1: client compute.
	b1 := r.EncodePerElem + float64(s.Neighbors+1)*r.MaskPerElemNeighbor
	if s.XNoiseTolerance > 0 {
		b1 += float64(s.XNoiseTolerance+1) * r.NoisePerElemComp
	}

	// Stages 2/4: per-byte time = 8 bits / (Mbps·1e6); uploads from |U|
	// clients share the server NIC, the slowest client's own link adds its
	// serial term.
	perByteClient := 8 / (r.ClientBandwidthMbps * 1e6)
	perByteServer := 8 / (r.ServerBandwidthMbps * 1e6)
	bComm := s.BytesPerParam * (perByteClient + survivors*perByteServer)

	// Stage 3: server compute.
	b3 := survivors * r.ServerAggPerElem
	b3 += dropped * float64(s.Neighbors) * r.ServerReconPerElem
	removable := float64(s.XNoiseTolerance) - dropped
	if s.XNoiseTolerance > 0 && removable > 0 {
		b3 += survivors * removable * r.ServerNoisePerElem
	}

	// Stage 5: client decode.
	b5 := r.DecodePerElem

	mk := func(b1 float64, comm bool) pipeline.Betas {
		c := r.CompConstSeconds
		if comm {
			c = r.CommConstSeconds
		}
		return pipeline.Betas{b1, r.InterventionSeconds, c}
	}
	return pipeline.PerfModel{Stages: []pipeline.Betas{
		mk(b1, false),
		mk(bComm, true),
		mk(b3, false),
		mk(bComm, true),
		mk(b5, false),
	}}, nil
}

// RoundTime is a round-latency breakdown in seconds.
type RoundTime struct {
	AggSeconds   float64 // distributed-DP portion (the five pipeline stages)
	OtherSeconds float64 // training etc.
	Chunks       int     // chunk count used (1 = plain)
}

// Total returns the full round latency.
func (rt RoundTime) Total() float64 { return rt.AggSeconds + rt.OtherSeconds }

// AggShare returns the aggregation share of the round (the percentages
// annotated in Figs. 2 and 10).
func (rt RoundTime) AggShare() float64 { return rt.AggSeconds / rt.Total() }

// PlainRound simulates the non-pipelined round (m = 1).
func (s Scenario) PlainRound() (RoundTime, error) {
	pm, err := s.PerfModel()
	if err != nil {
		return RoundTime{}, err
	}
	agg, err := pipeline.PlainTime(pipeline.DistributedDPWorkflow(), pm, float64(s.ModelParams))
	if err != nil {
		return RoundTime{}, err
	}
	return RoundTime{AggSeconds: agg, OtherSeconds: s.TrainSeconds, Chunks: 1}, nil
}

// PipelinedRound simulates the round at the optimal chunk count
// (maxM ≤ 0 = the Appendix C default of 20).
func (s Scenario) PipelinedRound(maxM int) (RoundTime, error) {
	pm, err := s.PerfModel()
	if err != nil {
		return RoundTime{}, err
	}
	m, agg, err := pipeline.OptimalChunks(pipeline.DistributedDPWorkflow(), pm, float64(s.ModelParams), maxM)
	if err != nil {
		return RoundTime{}, err
	}
	return RoundTime{AggSeconds: agg, OtherSeconds: s.TrainSeconds, Chunks: m}, nil
}
