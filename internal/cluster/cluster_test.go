package cluster

import (
	"testing"
)

func baseScenario(n int, params int64) Scenario {
	return Scenario{
		NumSampled:    n,
		Neighbors:     n - 1,
		ModelParams:   params,
		BytesPerParam: 2.5,
		TrainSeconds:  30,
		Rates:         DefaultRates(),
	}
}

func TestValidate(t *testing.T) {
	if err := baseScenario(16, 11_000_000).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.NumSampled = 1 },
		func(s *Scenario) { s.Neighbors = 0 },
		func(s *Scenario) { s.Neighbors = s.NumSampled },
		func(s *Scenario) { s.ModelParams = 0 },
		func(s *Scenario) { s.BytesPerParam = 0 },
		func(s *Scenario) { s.DropoutRate = 1.0 },
		func(s *Scenario) { s.DropoutRate = -0.1 },
		func(s *Scenario) { s.XNoiseTolerance = -1 },
		func(s *Scenario) { s.XNoiseTolerance = s.NumSampled },
		func(s *Scenario) { s.TrainSeconds = -1 },
	}
	for i, mutate := range bad {
		s := baseScenario(16, 1000)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAggregationDominatesRound(t *testing.T) {
	// Figure 2: SecAgg accounts for 86–97% of the round.
	for _, n := range []int{32, 48, 64} {
		s := baseScenario(n, 11_000_000)
		s.DropoutRate = 0.1
		rt, err := s.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		share := rt.AggShare()
		if share < 0.80 || share > 0.99 {
			t.Errorf("n=%d: agg share %.2f outside the paper's band", n, share)
		}
	}
}

func TestRoundTimeGrowsWithClients(t *testing.T) {
	prev := 0.0
	for _, n := range []int{32, 48, 64} {
		s := baseScenario(n, 11_000_000)
		s.DropoutRate = 0.1
		rt, err := s.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		if rt.Total() <= prev {
			t.Fatalf("round time should grow with clients: n=%d → %v (prev %v)", n, rt.Total(), prev)
		}
		prev = rt.Total()
	}
}

func TestSecAggPlusCheaperThanSecAgg(t *testing.T) {
	// Figure 2b vs 2a: SecAgg+ rounds are faster at every scale.
	for _, n := range []int{32, 48, 64} {
		sa := baseScenario(n, 11_000_000)
		sa.DropoutRate = 0.1
		sap := sa
		sap.Neighbors = 10 // O(log n) degree
		a, err := sa.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sap.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		if b.AggSeconds >= a.AggSeconds {
			t.Errorf("n=%d: SecAgg+ (%v) not faster than SecAgg (%v)", n, b.AggSeconds, a.AggSeconds)
		}
	}
}

func TestXNoiseOverheadModestAndShrinksWithDropout(t *testing.T) {
	// §6.3: XNoise extends the plain round by ≤ ~34% at d=0, less at
	// higher dropout.
	base := baseScenario(16, 11_000_000)
	baseRT, err := base.PlainRound()
	if err != nil {
		t.Fatal(err)
	}
	prevOverhead := 1.0
	for _, d := range []float64{0, 0.1, 0.2, 0.3} {
		s := base
		s.DropoutRate = d
		s.XNoiseTolerance = 8 // |U|/2
		rt, err := s.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		noX := base
		noX.DropoutRate = d
		noXRT, err := noX.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		overhead := rt.AggSeconds / noXRT.AggSeconds
		if overhead > 1.40 {
			t.Errorf("d=%v: XNoise overhead ×%.2f too large", d, overhead)
		}
		if overhead < 1.0 {
			t.Errorf("d=%v: XNoise cannot be free (×%.2f)", d, overhead)
		}
		if overhead > prevOverhead+1e-9 && d > 0 {
			t.Errorf("d=%v: overhead ×%.2f grew with dropout (prev ×%.2f)", d, overhead, prevOverhead)
		}
		prevOverhead = overhead
	}
	_ = baseRT
}

func TestPipelineSpeedupInPaperBand(t *testing.T) {
	// Figure 10: pipelining speeds rounds up by ~1.3–2.5×.
	cases := []struct {
		n      int
		params int64
	}{
		{16, 11_000_000},  // CIFAR-10 ResNet-18
		{16, 20_000_000},  // CIFAR-10 VGG-19
		{100, 11_000_000}, // FEMNIST ResNet-18
	}
	for _, c := range cases {
		s := baseScenario(c.n, c.params)
		s.DropoutRate = 0.1
		plain, err := s.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		piped, err := s.PipelinedRound(0)
		if err != nil {
			t.Fatal(err)
		}
		speedup := plain.AggSeconds / piped.AggSeconds
		if speedup < 1.15 || speedup > 3.0 {
			t.Errorf("n=%d d=%d: speedup %.2f outside plausible band", c.n, c.params, speedup)
		}
		if piped.Chunks < 2 {
			t.Errorf("n=%d: pipelining chose m=%d", c.n, piped.Chunks)
		}
	}
}

func TestLargerModelsLargerSpeedup(t *testing.T) {
	// §6.4 Amdahl argument: 20M model gains more than 1M model.
	small := baseScenario(100, 1_000_000)
	large := baseScenario(100, 20_000_000)
	speedup := func(s Scenario) float64 {
		plain, err := s.PlainRound()
		if err != nil {
			t.Fatal(err)
		}
		piped, err := s.PipelinedRound(0)
		if err != nil {
			t.Fatal(err)
		}
		return plain.AggSeconds / piped.AggSeconds
	}
	if speedup(large) <= speedup(small) {
		t.Errorf("larger model should benefit more: %v vs %v", speedup(large), speedup(small))
	}
}

func TestMoreClientsLargerSpeedup(t *testing.T) {
	// §6.4 "Dordis Scales with Number of Sampled Clients": 100 clients
	// (FEMNIST) gains more than 16 (CIFAR-10), same model.
	s16 := baseScenario(16, 11_000_000)
	s100 := baseScenario(100, 11_000_000)
	speedup := func(s Scenario) float64 {
		plain, _ := s.PlainRound()
		piped, _ := s.PipelinedRound(0)
		return plain.AggSeconds / piped.AggSeconds
	}
	if speedup(s100) <= speedup(s16) {
		t.Errorf("more clients should gain more: 100→%.2f vs 16→%.2f", speedup(s100), speedup(s16))
	}
}

func TestDroppedReducesServerRemovalWork(t *testing.T) {
	// More dropout → fewer components to remove → smaller stage-3 β₁.
	mk := func(d float64) float64 {
		s := baseScenario(16, 11_000_000)
		s.DropoutRate = d
		s.XNoiseTolerance = 8
		pm, err := s.PerfModel()
		if err != nil {
			t.Fatal(err)
		}
		return pm.Stages[2][0]
	}
	if !(mk(0.4) < mk(0.0)) {
		t.Error("stage-3 per-element cost should shrink with dropout under XNoise")
	}
}
