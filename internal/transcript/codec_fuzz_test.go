package transcript

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/sig"
)

// Native fuzz target for the 0xDD transcript frame family. CI runs a
// -fuzztime smoke over the checked-in seed corpus
// (testdata/fuzz/FuzzTranscriptCodec, regenerated via
// WRITE_FUZZ_CORPUS=1 go test -run TestWriteTranscriptCorpus).

// transcriptCodecSeeds returns the seed frames: signed and unsigned
// commitments, a proof, a combiner-tier bundle, and malformed mutations.
// The signer is derived from a fixed seed so regeneration is stable.
func transcriptCodecSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	signer, err := sig.NewSigner(bytes.NewReader(make([]byte, 64)))
	if err != nil {
		tb.Fatal(err)
	}
	roster := testRoster(5)
	digests := testDigests(roster)
	tr, err := Build(9, [32]byte{7}, roster, digests, signer)
	if err != nil {
		tb.Fatal(err)
	}
	unsigned, err := Build(9, [32]byte{}, roster[:1], digests[:1], nil)
	if err != nil {
		tb.Fatal(err)
	}
	pr, err := tr.ProofFor(3)
	if err != nil {
		tb.Fatal(err)
	}
	ct, err := BuildCombine(9, [32]byte{}, []ShardRoot{
		{Shard: 0, Root: [32]byte{1}}, {Shard: 1, Root: [32]byte{2}}, {Shard: 2, Root: [32]byte{3}},
	}, signer)
	if err != nil {
		tb.Fatal(err)
	}
	spr, err := ct.ProofFor(1)
	if err != nil {
		tb.Fatal(err)
	}
	enc := func(p []byte, err error) []byte {
		if err != nil {
			tb.Fatal(err)
		}
		return p
	}
	commit := enc(EncodeCommitment(&tr.Commitment))
	proof := enc(EncodeProof(pr))
	tier := enc(EncodeCombineTier(&CombineTierMsg{Commitment: ct.Commitment, Proof: *spr}))
	seeds := [][]byte{
		commit,
		enc(EncodeCommitment(&unsigned.Commitment)),
		proof,
		tier,
		commit[:len(commit)-1],            // truncated signature
		proof[:12],                        // truncated path
		{codecMagic, tagCommitment, 0xFF}, // future version
		{0xDC, tagProof, codecVersion},    // wrong magic
		append(append([]byte(nil), proof...), 0x00), // trailing byte
	}
	return seeds
}

// FuzzTranscriptCodec: the three decoders must never panic, and every
// frame any of them accepts must survive an encode/decode round trip
// unchanged.
func FuzzTranscriptCodec(f *testing.F) {
	for _, s := range transcriptCodecSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		if c, err := DecodeCommitment(p); err == nil {
			re, err := EncodeCommitment(c)
			if err != nil {
				t.Fatalf("accepted commitment does not re-encode: %v", err)
			}
			c2, err := DecodeCommitment(re)
			if err != nil || !reflect.DeepEqual(c, c2) {
				t.Fatalf("commitment round trip diverged (%v):\n%+v\n%+v", err, c, c2)
			}
		}
		if pr, err := DecodeProof(p); err == nil {
			re, err := EncodeProof(pr)
			if err != nil {
				t.Fatalf("accepted proof does not re-encode: %v", err)
			}
			pr2, err := DecodeProof(re)
			if err != nil || !reflect.DeepEqual(pr, pr2) {
				t.Fatalf("proof round trip diverged (%v):\n%+v\n%+v", err, pr, pr2)
			}
		}
		if m, err := DecodeCombineTier(p); err == nil {
			re, err := EncodeCombineTier(m)
			if err != nil {
				t.Fatalf("accepted tier bundle does not re-encode: %v", err)
			}
			m2, err := DecodeCombineTier(re)
			if err != nil || !reflect.DeepEqual(m, m2) {
				t.Fatalf("tier round trip diverged (%v):\n%+v\n%+v", err, m, m2)
			}
		}
	})
}

func writeFuzzCorpus(t *testing.T, fuzzName string, seeds [][]byte) {
	t.Helper()
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the checked-in seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteTranscriptCorpus(t *testing.T) {
	writeFuzzCorpus(t, "FuzzTranscriptCodec", transcriptCodecSeeds(t))
}
