package transcript

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sig"
)

func testRoster(n int) []RosterEntry {
	out := make([]RosterEntry, n)
	for i := range out {
		cp := make([]byte, 32)
		mp := make([]byte, 32)
		for j := range cp {
			cp[j] = byte(i + j)
			mp[j] = byte(i*7 + j)
		}
		out[i] = RosterEntry{ID: uint64(i + 1), CipherPub: cp, MaskPub: mp}
	}
	return out
}

func testDigests(roster []RosterEntry) []InputDigest {
	out := make([]InputDigest, len(roster))
	for i, e := range roster {
		out[i] = InputDigest{ID: e.ID, Digest: Digest([]uint64{e.ID, e.ID * 3, e.ID * 5})}
	}
	return out
}

func newTestSigner(t *testing.T) *sig.Signer {
	t.Helper()
	s, err := sig.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

// TestProofRoundTripAllSizes verifies every member's proof at every tree
// size that exercises a distinct Merkle shape (1 leaf, powers of two,
// off-by-one around them).
func TestProofRoundTripAllSizes(t *testing.T) {
	signer := newTestSigner(t)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17} {
		roster := testRoster(n)
		digests := testDigests(roster)
		tr, err := Build(42, [32]byte{}, roster, digests, signer)
		if err != nil {
			t.Fatalf("n=%d Build: %v", n, err)
		}
		for i, e := range roster {
			pr, err := tr.ProofFor(e.ID)
			if err != nil {
				t.Fatalf("n=%d ProofFor(%d): %v", n, e.ID, err)
			}
			if err := Verify(&tr.Commitment, pr, e, digests[i].Digest, signer.Public()); err != nil {
				t.Fatalf("n=%d Verify(%d): %v", n, e.ID, err)
			}
		}
	}
}

// TestVerifyRejectsWrongKey pins that a pinned server key is actually
// checked, and that the unsigned mode (empty pub) skips it.
func TestVerifyRejectsWrongKey(t *testing.T) {
	signer, other := newTestSigner(t), newTestSigner(t)
	roster := testRoster(4)
	digests := testDigests(roster)
	tr, err := Build(1, [32]byte{}, roster, digests, signer)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := tr.ProofFor(2)
	if err := Verify(&tr.Commitment, pr, roster[1], digests[1].Digest, other.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: got %v, want ErrBadSignature", err)
	}
	if err := Verify(&tr.Commitment, pr, roster[1], digests[1].Digest, nil); err != nil {
		t.Fatalf("unsigned mode: %v", err)
	}
}

// TestBuildRejectsMalformedInput pins the constructor's invariants:
// duplicate ids and digests from outside the roster.
func TestBuildRejectsMalformedInput(t *testing.T) {
	roster := testRoster(3)
	if _, err := Build(1, [32]byte{}, append(roster, roster[0]), nil, nil); err == nil {
		t.Fatal("duplicate roster entry accepted")
	}
	if _, err := Build(1, [32]byte{}, roster, []InputDigest{{ID: 99}}, nil); err == nil {
		t.Fatal("digest from outside the roster accepted")
	}
	tr, err := Build(1, [32]byte{}, roster, testDigests(roster)[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ProofFor(3); err == nil {
		t.Fatal("proof issued for a member without an input digest")
	}
}

// TestChainSemantics pins Extend's continuity and monotonicity rules and
// the chain's marshal round trip.
func TestChainSemantics(t *testing.T) {
	var c Chain
	r1 := [32]byte{1}
	r2 := [32]byte{2}
	if err := c.Extend(1, [32]byte{}, r1); err != nil {
		t.Fatalf("first extend: %v", err)
	}
	if err := c.Extend(2, [32]byte{9}, r2); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("bad prev: got %v, want ErrChainBroken", err)
	}
	if err := c.Extend(1, r1, r2); !errors.Is(err, ErrChainNotNewer) {
		t.Fatalf("non-advancing round: got %v, want ErrChainNotNewer", err)
	}
	if err := c.Extend(2, r1, r2); err != nil {
		t.Fatalf("second extend: %v", err)
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalChain(blob)
	if err != nil {
		t.Fatal(err)
	}
	if tip, ok := got.Tip(); !ok || tip != r2 || got.Round() != 2 {
		t.Fatalf("unmarshalled chain tip=%x round=%d", tip, got.Round())
	}
}

// TestRecorderChainsRounds pins that successive BuildRound calls chain
// (each commitment's Prev is the previous root) and that an auditor
// accepts the sequence.
func TestRecorderChainsRounds(t *testing.T) {
	signer := newTestSigner(t)
	rec := NewRecorder(signer)
	aud := NewAuditor(signer.Public())
	roster := testRoster(4)
	var prevRoot [32]byte
	for round := uint64(1); round <= 3; round++ {
		digests := testDigests(roster)
		tr, err := rec.BuildRound(round, roster, digests)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Commitment.Prev != prevRoot {
			t.Fatalf("round %d Prev=%x, want %x", round, tr.Commitment.Prev, prevRoot)
		}
		pr, err := tr.ProofFor(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := aud.VerifyRound(&tr.Commitment, pr, roster[1], digests[1].Digest); err != nil {
			t.Fatalf("round %d audit: %v", round, err)
		}
		prevRoot = tr.Root()
	}
	if h := aud.History(); len(h) != 3 || h[2].Round != 3 {
		t.Fatalf("auditor history %+v", h)
	}
}

// TestAuditorTrustOnFirstAudit pins the mid-stream bootstrap: a fresh
// auditor adopts whatever round it verifies first (a client joining or
// restarting cannot know the prior root), but from then on the chain is
// enforced — a later round whose Prev does not match the adopted tip is
// rejected, as is a non-advancing round number.
func TestAuditorTrustOnFirstAudit(t *testing.T) {
	signer := newTestSigner(t)
	rec := NewRecorder(signer)
	roster := testRoster(4)
	digests := testDigests(roster)
	var trs []*Transcript
	for round := uint64(1); round <= 3; round++ {
		tr, err := rec.BuildRound(round, roster, digests)
		if err != nil {
			t.Fatal(err)
		}
		trs = append(trs, tr)
	}
	verify := func(aud *Auditor, tr *Transcript) error {
		pr, err := tr.ProofFor(2)
		if err != nil {
			t.Fatal(err)
		}
		return aud.VerifyRound(&tr.Commitment, pr, roster[1], digests[1].Digest)
	}

	// Joining at round 2 (non-zero Prev) adopts it, then round 3 chains.
	aud := NewAuditor(signer.Public())
	if err := verify(aud, trs[1]); err != nil {
		t.Fatalf("mid-stream first audit: %v", err)
	}
	if err := verify(aud, trs[2]); err != nil {
		t.Fatalf("post-adoption audit: %v", err)
	}
	// After adoption the chain is enforced: round 1 neither advances the
	// round nor chains from the adopted tip.
	if err := verify(aud, trs[0]); !errors.Is(err, ErrChainNotNewer) {
		t.Fatalf("rewound round: got %v, want ErrChainNotNewer", err)
	}
	// A round skipping the chain (Prev pointing at round 1, tip at round
	// 3) is a break, not a fresh adoption.
	aud2 := NewAuditor(signer.Public())
	if err := verify(aud2, trs[0]); err != nil {
		t.Fatal(err)
	}
	if err := verify(aud2, trs[2]); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("skipped round: got %v, want ErrChainBroken", err)
	}
	if h := aud2.History(); len(h) != 1 {
		t.Fatalf("failed audit extended the history: %+v", h)
	}
}

// TestCombineTierRoundTrip pins the two-tier composition: shard roots as
// combiner leaves, shard proofs verifying against the combiner root.
func TestCombineTierRoundTrip(t *testing.T) {
	signer := newTestSigner(t)
	shards := []ShardRoot{
		{Shard: 0, Root: [32]byte{1}},
		{Shard: 1, Root: [32]byte{2}},
		{Shard: 2, Root: [32]byte{3}},
	}
	ct, err := BuildCombine(7, [32]byte{}, shards, signer)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		pr, err := ct.ProofFor(s.Shard)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCombineTier(&ct.Commitment, pr, s.Root, signer.Public()); err != nil {
			t.Fatalf("shard %d: %v", s.Shard, err)
		}
		wrong := s.Root
		wrong[0] ^= 1
		if err := VerifyCombineTier(&ct.Commitment, pr, wrong, signer.Public()); err == nil {
			t.Fatalf("shard %d verified against a mutated root", s.Shard)
		}
	}
}

// TestCodecRoundTrips pins the 0xDD codec: encode/decode equality for
// every frame type, and magic/version rejection.
func TestCodecRoundTrips(t *testing.T) {
	signer := newTestSigner(t)
	roster := testRoster(5)
	digests := testDigests(roster)
	tr, err := Build(3, [32]byte{8}, roster, digests, signer)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := EncodeCommitment(&tr.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := DecodeCommitment(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gotC, tr.Commitment) {
		t.Fatalf("commitment round trip: %+v != %+v", gotC, tr.Commitment)
	}
	pr, _ := tr.ProofFor(4)
	pp, err := EncodeProof(pr)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := DecodeProof(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotP, pr) {
		t.Fatalf("proof round trip: %+v != %+v", gotP, pr)
	}
	ct, err := BuildCombine(3, [32]byte{8}, []ShardRoot{{Shard: 1, Root: tr.Root()}}, signer)
	if err != nil {
		t.Fatal(err)
	}
	spr, _ := ct.ProofFor(1)
	msg := &CombineTierMsg{Commitment: ct.Commitment, Proof: *spr}
	mp, err := EncodeCombineTier(msg)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := DecodeCombineTier(mp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM, msg) {
		t.Fatalf("combine tier round trip: %+v != %+v", gotM, msg)
	}

	for _, bad := range [][]byte{nil, {0xDD}, {0xD0, tagCommitment, 1}, {0xDD, tagCommitment, 99}} {
		if _, err := DecodeCommitment(bad); err == nil {
			t.Fatalf("malformed commitment %x decoded", bad)
		}
	}
}

// TestRecorderRestartRoundTrip pins that a recorder restored from
// MarshalBinary continues the same chain.
func TestRecorderRestartRoundTrip(t *testing.T) {
	signer := newTestSigner(t)
	rec := NewRecorder(signer)
	roster := testRoster(3)
	t1, err := rec.BuildRound(1, roster, testDigests(roster))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := UnmarshalRecorder(blob, signer)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := rec2.BuildRound(2, roster, testDigests(roster))
	if err != nil {
		t.Fatal(err)
	}
	if t2.Commitment.Prev != t1.Root() {
		t.Fatalf("restored recorder broke the chain: Prev=%x want %x", t2.Commitment.Prev, t1.Root())
	}
}

// TestTranscriptTamperMatrix is the adversarial pin of the integrity
// layer: starting from a commitment+proof pair that verifies, it mutates
// EVERY byte position of (a) the encoded commitment — which carries the
// chained prev, both subtree roots, the leaf counts, and the root
// signature, (b) the encoded inclusion proof — round, identity, indices
// and both audit paths, (c) the client's masked-input digest (the input
// leaf preimage), and (d) the client's roster entry encoding (the roster
// leaf preimage), asserting that verification fails for every single
// mutation. A surviving mutation would be a forgeable bit of the round's
// history.
func TestTranscriptTamperMatrix(t *testing.T) {
	signer := newTestSigner(t)
	roster := testRoster(6)
	digests := testDigests(roster)
	tr, err := Build(9, [32]byte{0xEE}, roster, digests, signer)
	if err != nil {
		t.Fatal(err)
	}
	self := roster[3]
	digest := digests[3].Digest
	pr, err := tr.ProofFor(self.ID)
	if err != nil {
		t.Fatal(err)
	}
	commitBytes, err := EncodeCommitment(&tr.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	proofBytes, err := EncodeProof(pr)
	if err != nil {
		t.Fatal(err)
	}
	pub := signer.Public()

	// Baseline sanity: the untampered pair verifies through the decode path.
	verify := func(cb, pb []byte, self RosterEntry, digest [32]byte) error {
		c, err := DecodeCommitment(cb)
		if err != nil {
			return err
		}
		p, err := DecodeProof(pb)
		if err != nil {
			return err
		}
		return Verify(c, p, self, digest, pub)
	}
	if err := verify(commitBytes, proofBytes, self, digest); err != nil {
		t.Fatalf("baseline verification: %v", err)
	}

	// (a)+(b): every byte of the two wire frames, under three different
	// single-byte mutations each (flip all bits, flip low bit, set zero —
	// a mutation class that catches "ignored byte" and "compared modulo"
	// bugs a single pattern might miss).
	for _, frame := range []struct {
		name string
		data []byte
	}{{"commitment", commitBytes}, {"proof", proofBytes}} {
		for pos := 0; pos < len(frame.data); pos++ {
			orig := frame.data[pos]
			for _, mut := range []byte{orig ^ 0xFF, orig ^ 0x01, 0x00} {
				if mut == orig {
					continue
				}
				tampered := append([]byte(nil), frame.data...)
				tampered[pos] = mut
				cb, pb := commitBytes, proofBytes
				if frame.name == "commitment" {
					cb = tampered
				} else {
					pb = tampered
				}
				if err := verify(cb, pb, self, digest); err == nil {
					t.Fatalf("%s byte %d: mutation %02x→%02x verified", frame.name, pos, orig, mut)
				}
			}
		}
	}

	// (c): every byte of the masked-input digest (the input-leaf preimage).
	for pos := 0; pos < len(digest); pos++ {
		bad := digest
		bad[pos] ^= 0xFF
		if err := verify(commitBytes, proofBytes, self, bad); err == nil {
			t.Fatalf("digest byte %d: mutation verified", pos)
		}
	}

	// (d): every byte of the roster-leaf preimage — id, cipher pub, mask
	// pub (the client's own advertised identity and keys).
	for pos := 0; pos < 8; pos++ {
		bad := self
		bad.ID ^= 1 << (8 * pos)
		if err := verify(commitBytes, proofBytes, bad, digest); err == nil {
			t.Fatalf("roster id byte %d: mutation verified", pos)
		}
	}
	for pos := range self.CipherPub {
		bad := self
		bad.CipherPub = append([]byte(nil), self.CipherPub...)
		bad.CipherPub[pos] ^= 0xFF
		if err := verify(commitBytes, proofBytes, bad, digest); err == nil {
			t.Fatalf("cipher pub byte %d: mutation verified", pos)
		}
	}
	for pos := range self.MaskPub {
		bad := self
		bad.MaskPub = append([]byte(nil), self.MaskPub...)
		bad.MaskPub[pos] ^= 0xFF
		if err := verify(commitBytes, proofBytes, bad, digest); err == nil {
			t.Fatalf("mask pub byte %d: mutation verified", pos)
		}
	}

	// Cross-frame splice: a valid proof for a different member must not
	// verify as this member's.
	otherProof, err := tr.ProofFor(roster[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := EncodeProof(otherProof)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(commitBytes, ob, self, digest); !errors.Is(err, ErrWrongIdentity) {
		t.Fatalf("spliced proof: got %v, want ErrWrongIdentity", err)
	}
}

// TestCombineTamperMatrix applies the same byte matrix to the combiner
// tier frame: every byte of the encoded CombineTierMsg must break either
// decoding or VerifyCombineTier.
func TestCombineTamperMatrix(t *testing.T) {
	signer := newTestSigner(t)
	shardRoot := [32]byte{0xAB, 1, 2, 3}
	ct, err := BuildCombine(5, [32]byte{0x11}, []ShardRoot{
		{Shard: 0, Root: shardRoot}, {Shard: 1, Root: [32]byte{0xCD}},
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ct.ProofFor(0)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeCombineTier(&CombineTierMsg{Commitment: ct.Commitment, Proof: *pr})
	if err != nil {
		t.Fatal(err)
	}
	pub := signer.Public()
	verify := func(fb []byte, root [32]byte) error {
		m, err := DecodeCombineTier(fb)
		if err != nil {
			return err
		}
		return VerifyCombineTier(&m.Commitment, &m.Proof, root, pub)
	}
	if err := verify(frame, shardRoot); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for pos := 0; pos < len(frame); pos++ {
		orig := frame[pos]
		for _, mut := range []byte{orig ^ 0xFF, orig ^ 0x01} {
			tampered := append([]byte(nil), frame...)
			tampered[pos] = mut
			if err := verify(tampered, shardRoot); err == nil {
				t.Fatalf("combine frame byte %d: mutation %02x→%02x verified", pos, orig, mut)
			}
		}
	}
	for pos := 0; pos < len(shardRoot); pos++ {
		bad := shardRoot
		bad[pos] ^= 0xFF
		if err := verify(frame, bad); err == nil {
			t.Fatalf("shard root byte %d: mutation verified", pos)
		}
	}
}

// TestDigestCanonical pins the digest's framing: distinct vectors that
// would concatenate identically must not collide, and the digest is
// order-sensitive.
func TestDigestCanonical(t *testing.T) {
	if Digest([]uint64{1, 2}) == Digest([]uint64{2, 1}) {
		t.Fatal("digest ignores order")
	}
	if Digest(nil) == Digest([]uint64{0}) {
		t.Fatal("digest conflates empty and zero")
	}
	if !bytes.Equal(sum32(Digest([]uint64{7})), sum32(Digest([]uint64{7}))) {
		t.Fatal("digest not deterministic")
	}
}

func sum32(d [32]byte) []byte { return d[:] }

// TestRosterRootOrderInsensitiveThroughBuild pins that Build commits
// entries in ascending-id order regardless of input order, so server and
// clients need not agree on slice order — only on set membership.
func TestRosterRootOrderInsensitiveThroughBuild(t *testing.T) {
	roster := testRoster(5)
	shuffled := []RosterEntry{roster[3], roster[0], roster[4], roster[2], roster[1]}
	a, err := Build(1, [32]byte{}, roster, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(1, [32]byte{}, shuffled, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != b.Root() {
		t.Fatal("Build is input-order sensitive")
	}
}

func ExampleVerify() {
	signer, _ := sig.NewSigner(rand.Reader)
	roster := []RosterEntry{
		{ID: 1, CipherPub: []byte{1}, MaskPub: []byte{2}},
		{ID: 2, CipherPub: []byte{3}, MaskPub: []byte{4}},
	}
	digest := Digest([]uint64{10, 20, 30})
	tr, _ := Build(1, [32]byte{}, roster, []InputDigest{{ID: 1, Digest: digest}}, signer)
	proof, _ := tr.ProofFor(1)
	err := Verify(&tr.Commitment, proof, roster[0], digest, signer.Public())
	fmt.Println(err)
	// Output: <nil>
}
