// Package transcript is the integrity layer clients can audit: a
// per-round Merkle commitment over everything the server claims the round
// was made of — the sealed roster (advertise keys), and the digest of
// every masked input it aggregated — chained to the previous round's
// root and signed with the server's handshake key (internal/sig).
//
// The paper's server is honest-but-curious; a production deployment wants
// clients to *verify* they aggregated into the round they think they did.
// The transcript gives the three opaque claims a client otherwise takes
// on faith a checkable definition:
//
//   - the roster: the handshake's RosterHash is the transcript's
//     roster-subtree root (RosterRoot), so "we resume on the same roster"
//     and "my advertise keys are in the round" are now the same Merkle
//     statement — an inclusion proof against the hash the client already
//     pinned at handshake time;
//   - its own contribution: the server commits SHA-256 digests of the
//     masked inputs it folded (Digest), and returns each survivor an
//     inclusion proof, so a client knows its upload — not a substitute —
//     is in the aggregate it was shown;
//   - history: each round root hashes over the previous round's root
//     (Chain), so auditing n rounds costs n constant-size checks and a
//     server cannot rewrite a past round without breaking every root
//     after it.
//
// The sharded topology composes: each shard's round root becomes a leaf
// of the root combiner's tree (ShardLeaf/BuildCombine), so one client
// proof spans both tiers — masked-input digest → shard root → combiner
// root. Everything rides the existing frame/codec machinery (the 0x60
// frame family, codec.go) rather than a side channel, per the
// cheap-and-uniform metadata lesson; see ARCHITECTURE.md ("Integrity
// layer") and PROTOCOL.md for the wire layouts.
//
// The tree is the RFC 6962 shape: leaves are domain-separated from
// interior nodes (0x00/0x01 prefixes), and an n-leaf tree splits at the
// largest power of two strictly below n, so inclusion proofs are
// log₂(n)×32 bytes.
package transcript

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sig"
)

// Domain-separation labels. Leaves hash with a 0x00 prefix and a kind
// byte, interior nodes with 0x01, and the round/combine roots bind a
// versioned ASCII label — the same pattern as the handshake signature
// labels in core.
var (
	roundRootLabel   = []byte("dordis/transcript/round/v1")
	combineRootLabel = []byte("dordis/transcript/combine/v1")
	sigLabel         = []byte("dordis/transcript/sig/v1|")
)

const (
	leafKindRoster = 'R'
	leafKindInput  = 'I'
	leafKindShard  = 'S'
)

// RosterEntry is one member's stage-0 advertisement as the transcript
// commits it: identity plus the advertised public keys. For substrates
// with a single key (LightSecAgg), MaskPub is empty; the leaf encoding
// length-prefixes both keys, so entries never alias across shapes.
type RosterEntry struct {
	ID        uint64
	CipherPub []byte
	MaskPub   []byte
}

// InputDigest is one survivor's committed contribution: the digest of the
// masked input the server folded into the aggregate.
type InputDigest struct {
	ID     uint64
	Digest [32]byte
}

// ShardRoot is one shard's signed round root as the combiner tier commits
// it: the shard id and the shard transcript's Root().
type ShardRoot struct {
	Shard uint64
	Root  [32]byte
}

// Digest is the canonical masked-input digest both sides compute: SHA-256
// over the little-endian bytes of the masked vector. Client (at upload)
// and server (at AddMasked) must agree on it byte-for-byte; it is the
// leaf preimage the inclusion proof anchors.
func Digest(xs []uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte("dordis/transcript/masked/v1"))
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func rosterLeaf(e RosterEntry) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00, leafKindRoster})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.ID)
	h.Write(b[:])
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(e.CipherPub)))
	h.Write(l[:])
	h.Write(e.CipherPub)
	binary.LittleEndian.PutUint16(l[:], uint16(len(e.MaskPub)))
	h.Write(l[:])
	h.Write(e.MaskPub)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func inputLeaf(d InputDigest) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00, leafKindInput})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], d.ID)
	h.Write(b[:])
	h.Write(d.Digest[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ShardLeaf is the combiner-tier leaf for one shard's round root. It is
// exported so a shard aggregator (or an auditor replaying a transcript)
// can recompute its own leaf without the combiner's tree.
func ShardLeaf(s ShardRoot) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00, leafKindShard})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], s.Shard)
	h.Write(b[:])
	h.Write(s.Root[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// emptyRoot is the root of a zero-leaf subtree (e.g. a round the
// transcript recorded no inputs for).
func emptyRoot() [32]byte {
	return sha256.Sum256([]byte("dordis/transcript/empty/v1"))
}

// splitPoint returns the largest power of two strictly less than n
// (n ≥ 2) — the RFC 6962 subtree split.
func splitPoint(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// treeRoot folds hashed leaves into the subtree root.
func treeRoot(leaves [][32]byte) [32]byte {
	switch len(leaves) {
	case 0:
		return emptyRoot()
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(treeRoot(leaves[:k]), treeRoot(leaves[k:]))
}

// proofPath returns the audit path for leaf i: the sibling subtree roots
// from the leaf upward.
func proofPath(leaves [][32]byte, i int) [][32]byte {
	if len(leaves) <= 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(proofPath(leaves[:k], i), treeRoot(leaves[k:]))
	}
	return append(proofPath(leaves[k:], i-k), treeRoot(leaves[:k]))
}

// rootFromPath recomputes the subtree root from a leaf, its index, the
// subtree size, and the audit path — the verifier's mirror of proofPath.
func rootFromPath(leaf [32]byte, index, n int, path [][32]byte) ([32]byte, error) {
	if n < 1 || index < 0 || index >= n {
		return [32]byte{}, fmt.Errorf("transcript: leaf index %d outside tree of %d", index, n)
	}
	if n == 1 {
		if len(path) != 0 {
			return [32]byte{}, fmt.Errorf("transcript: %d path nodes for a single-leaf tree", len(path))
		}
		return leaf, nil
	}
	if len(path) == 0 {
		return [32]byte{}, fmt.Errorf("transcript: audit path exhausted at subtree of %d", n)
	}
	k := splitPoint(n)
	sibling := path[len(path)-1]
	if index < k {
		sub, err := rootFromPath(leaf, index, k, path[:len(path)-1])
		if err != nil {
			return [32]byte{}, err
		}
		return nodeHash(sub, sibling), nil
	}
	sub, err := rootFromPath(leaf, index-k, n-k, path[:len(path)-1])
	if err != nil {
		return [32]byte{}, err
	}
	return nodeHash(sibling, sub), nil
}

// RosterRoot is the Merkle root of the roster subtree: one leaf per
// member, in the given order (drivers pass sealed rosters, which are
// sorted by id). This is the handshake's roster hash — the re-key
// handshake's shared-state check and the transcript's roster commitment
// are the same value, which is what makes the opaque hash clients pin at
// handshake time client-checkable after the round.
func RosterRoot(entries []RosterEntry) [32]byte {
	leaves := make([][32]byte, len(entries))
	for i, e := range entries {
		leaves[i] = rosterLeaf(e)
	}
	return treeRoot(leaves)
}

// Commitment is one round's signed transcript header: everything a
// verifier needs to recompute the round root from a proof. Prev chains to
// the previous round's Root (zero for the first recorded round).
type Commitment struct {
	Round       uint64
	Prev        [32]byte
	RosterRoot  [32]byte
	RosterCount uint32
	InputRoot   [32]byte
	InputCount  uint32
	// Signature is the server's Ed25519 signature over sigLabel‖Root();
	// empty in semi-honest deployments (mirroring the handshake).
	Signature []byte
}

// Root recomputes the round root the signature covers: a hash over the
// label, round number, previous root, and both subtree commitments with
// their leaf counts.
func (c *Commitment) Root() [32]byte {
	h := sha256.New()
	h.Write(roundRootLabel)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.Round)
	h.Write(b[:])
	h.Write(c.Prev[:])
	h.Write(c.RosterRoot[:])
	binary.LittleEndian.PutUint32(b[:4], c.RosterCount)
	h.Write(b[:4])
	h.Write(c.InputRoot[:])
	binary.LittleEndian.PutUint32(b[:4], c.InputCount)
	h.Write(b[:4])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Proof is one client's inclusion proof against a Commitment: the audit
// paths for its roster leaf and its masked-input leaf.
type Proof struct {
	Round       uint64
	ID          uint64
	RosterIndex uint32
	RosterPath  [][32]byte
	InputIndex  uint32
	InputPath   [][32]byte
}

// CombineCommitment is the combiner tier's signed header: the Merkle root
// over the contributing shards' round roots, chained to the combiner's
// previous round root.
type CombineCommitment struct {
	Round      uint64
	Prev       [32]byte
	ShardRoot  [32]byte
	ShardCount uint32
	Signature  []byte
}

// Root recomputes the combiner-tier round root.
func (c *CombineCommitment) Root() [32]byte {
	h := sha256.New()
	h.Write(combineRootLabel)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.Round)
	h.Write(b[:])
	h.Write(c.Prev[:])
	h.Write(c.ShardRoot[:])
	binary.LittleEndian.PutUint32(b[:4], c.ShardCount)
	h.Write(b[:4])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ShardProof is a shard's inclusion proof in the combiner tier: the audit
// path from ShardLeaf(shard, shard round root) to CombineCommitment's
// ShardRoot. One proof serves every client of the shard — the second hop
// of the two-tier client audit.
type ShardProof struct {
	Round uint64
	Shard uint64
	Index uint32
	Path  [][32]byte
}

// Transcript is one built round: the signed commitment plus the leaf
// material needed to issue proofs. Only the building side (the server)
// holds a Transcript; verifiers work from Commitment+Proof.
type Transcript struct {
	Commitment   Commitment
	rosterLeaves [][32]byte
	inputLeaves  [][32]byte
	rosterIdx    map[uint64]int
	inputIdx     map[uint64]int
}

// Build constructs one round's transcript. Roster entries and input
// digests are committed in ascending-id order regardless of input order;
// duplicate ids are rejected. prev is the previous round's root (zero for
// the first round); signer, when non-nil, signs the root.
func Build(round uint64, prev [32]byte, roster []RosterEntry, inputs []InputDigest,
	signer *sig.Signer) (*Transcript, error) {

	roster = append([]RosterEntry(nil), roster...)
	sort.Slice(roster, func(i, j int) bool { return roster[i].ID < roster[j].ID })
	inputs = append([]InputDigest(nil), inputs...)
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].ID < inputs[j].ID })

	t := &Transcript{
		rosterLeaves: make([][32]byte, len(roster)),
		inputLeaves:  make([][32]byte, len(inputs)),
		rosterIdx:    make(map[uint64]int, len(roster)),
		inputIdx:     make(map[uint64]int, len(inputs)),
	}
	for i, e := range roster {
		if _, dup := t.rosterIdx[e.ID]; dup {
			return nil, fmt.Errorf("transcript: duplicate roster entry %d", e.ID)
		}
		t.rosterIdx[e.ID] = i
		t.rosterLeaves[i] = rosterLeaf(e)
	}
	for i, d := range inputs {
		if _, dup := t.inputIdx[d.ID]; dup {
			return nil, fmt.Errorf("transcript: duplicate input digest %d", d.ID)
		}
		if _, inRoster := t.rosterIdx[d.ID]; !inRoster {
			return nil, fmt.Errorf("transcript: input digest from %d outside the roster", d.ID)
		}
		t.inputIdx[d.ID] = i
		t.inputLeaves[i] = inputLeaf(d)
	}
	t.Commitment = Commitment{
		Round:       round,
		Prev:        prev,
		RosterRoot:  treeRoot(t.rosterLeaves),
		RosterCount: uint32(len(roster)),
		InputRoot:   treeRoot(t.inputLeaves),
		InputCount:  uint32(len(inputs)),
	}
	if signer != nil {
		root := t.Commitment.Root()
		t.Commitment.Signature = signer.Sign(sigPayload(root))
	}
	return t, nil
}

// Root returns the round root (the chained, signed value).
func (t *Transcript) Root() [32]byte { return t.Commitment.Root() }

// ProofFor issues the inclusion proof for one survivor: its roster leaf
// and its masked-input leaf. The id must have both a roster entry and an
// input digest (dropped clients have no contribution to prove).
func (t *Transcript) ProofFor(id uint64) (*Proof, error) {
	ri, ok := t.rosterIdx[id]
	if !ok {
		return nil, fmt.Errorf("transcript: no roster entry for %d", id)
	}
	ii, ok := t.inputIdx[id]
	if !ok {
		return nil, fmt.Errorf("transcript: no input digest for %d", id)
	}
	return &Proof{
		Round:       t.Commitment.Round,
		ID:          id,
		RosterIndex: uint32(ri),
		RosterPath:  proofPath(t.rosterLeaves, ri),
		InputIndex:  uint32(ii),
		InputPath:   proofPath(t.inputLeaves, ii),
	}, nil
}

// CombineTranscript is one built combiner-tier round.
type CombineTranscript struct {
	Commitment CombineCommitment
	leaves     [][32]byte
	idx        map[uint64]int
}

// BuildCombine constructs the combiner tier's transcript over the
// contributing shards' round roots (committed in ascending shard order).
func BuildCombine(round uint64, prev [32]byte, shards []ShardRoot, signer *sig.Signer) (*CombineTranscript, error) {
	shards = append([]ShardRoot(nil), shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
	t := &CombineTranscript{
		leaves: make([][32]byte, len(shards)),
		idx:    make(map[uint64]int, len(shards)),
	}
	for i, s := range shards {
		if _, dup := t.idx[s.Shard]; dup {
			return nil, fmt.Errorf("transcript: duplicate shard root %d", s.Shard)
		}
		t.idx[s.Shard] = i
		t.leaves[i] = ShardLeaf(s)
	}
	t.Commitment = CombineCommitment{
		Round:      round,
		Prev:       prev,
		ShardRoot:  treeRoot(t.leaves),
		ShardCount: uint32(len(shards)),
	}
	if signer != nil {
		root := t.Commitment.Root()
		t.Commitment.Signature = signer.Sign(sigPayload(root))
	}
	return t, nil
}

// Root returns the combiner-tier round root.
func (t *CombineTranscript) Root() [32]byte { return t.Commitment.Root() }

// ProofFor issues shard's inclusion proof in the combiner tree.
func (t *CombineTranscript) ProofFor(shard uint64) (*ShardProof, error) {
	i, ok := t.idx[shard]
	if !ok {
		return nil, fmt.Errorf("transcript: shard %d not in the combiner tree", shard)
	}
	return &ShardProof{
		Round: t.Commitment.Round,
		Shard: shard,
		Index: uint32(i),
		Path:  proofPath(t.leaves, i),
	}, nil
}

func sigPayload(root [32]byte) []byte {
	out := make([]byte, 0, len(sigLabel)+32)
	out = append(out, sigLabel...)
	return append(out, root[:]...)
}

// Named verification errors — the tamper matrix pins that every
// single-byte mutation of leaf, path, root material, or signature lands
// on one of these (or a decode error upstream).
var (
	ErrBadSignature  = errors.New("transcript: root signature invalid or missing")
	ErrProofMismatch = errors.New("transcript: inclusion proof does not reach the committed root")
	ErrRoundMismatch = errors.New("transcript: proof round does not match the commitment")
	ErrChainBroken   = errors.New("transcript: round root does not chain to the previous root")
	ErrChainNotNewer = errors.New("transcript: round does not advance the chain")
	ErrWrongIdentity = errors.New("transcript: proof is not for this client")
)

// VerifySignature checks the commitment's root signature under serverPub.
// An empty serverPub skips the check (semi-honest deployments, mirroring
// the handshake's unsigned mode).
func VerifySignature(root [32]byte, signature, serverPub []byte) error {
	if len(serverPub) == 0 {
		return nil
	}
	if !sig.Verify(serverPub, sigPayload(root), signature) {
		return ErrBadSignature
	}
	return nil
}

// Verify is the client-side check for one flat (single-tier) round: the
// commitment's signature verifies under serverPub (when pinned), the
// client's own roster entry is included under RosterRoot, and its
// masked-input digest is included under InputRoot. It returns nil only
// when every check passes.
func Verify(c *Commitment, p *Proof, self RosterEntry, digest [32]byte, serverPub []byte) error {
	if p.ID != self.ID {
		return fmt.Errorf("%w: proof for %d, client is %d", ErrWrongIdentity, p.ID, self.ID)
	}
	if p.Round != c.Round {
		return fmt.Errorf("%w: proof round %d, commitment round %d", ErrRoundMismatch, p.Round, c.Round)
	}
	if err := VerifySignature(c.Root(), c.Signature, serverPub); err != nil {
		return err
	}
	got, err := rootFromPath(rosterLeaf(self), int(p.RosterIndex), int(c.RosterCount), p.RosterPath)
	if err != nil {
		return fmt.Errorf("%w: roster: %v", ErrProofMismatch, err)
	}
	if got != c.RosterRoot {
		return fmt.Errorf("%w: roster subtree", ErrProofMismatch)
	}
	got, err = rootFromPath(inputLeaf(InputDigest{ID: self.ID, Digest: digest}),
		int(p.InputIndex), int(c.InputCount), p.InputPath)
	if err != nil {
		return fmt.Errorf("%w: input: %v", ErrProofMismatch, err)
	}
	if got != c.InputRoot {
		return fmt.Errorf("%w: input subtree", ErrProofMismatch)
	}
	return nil
}

// VerifyCombineTier is the second hop of the two-tier audit: the shard's
// round root (which the client verified at tier one) is included in the
// combiner's tree, and the combiner's root signature verifies under
// combinerPub (when pinned).
func VerifyCombineTier(c *CombineCommitment, p *ShardProof, shardRoot [32]byte, combinerPub []byte) error {
	if p.Round != c.Round {
		return fmt.Errorf("%w: shard proof round %d, commitment round %d", ErrRoundMismatch, p.Round, c.Round)
	}
	if err := VerifySignature(c.Root(), c.Signature, combinerPub); err != nil {
		return err
	}
	got, err := rootFromPath(ShardLeaf(ShardRoot{Shard: p.Shard, Root: shardRoot}),
		int(p.Index), int(c.ShardCount), p.Path)
	if err != nil {
		return fmt.Errorf("%w: shard tier: %v", ErrProofMismatch, err)
	}
	if got != c.ShardRoot {
		return fmt.Errorf("%w: shard tier", ErrProofMismatch)
	}
	return nil
}

// Chain tracks a root chain tip — the server side uses it through
// Recorder to chain successive rounds, the client side through Auditor to
// audit them. The zero Chain has no tip (first round chains from zero).
type Chain struct {
	round uint64
	tip   [32]byte
	have  bool
}

// Tip returns the last recorded root and whether one exists.
func (c *Chain) Tip() ([32]byte, bool) { return c.tip, c.have }

// Round returns the last recorded round number (0 when none).
func (c *Chain) Round() uint64 { return c.round }

// Adopt unconditionally records (round, root) as the chain tip. It is
// the trust-on-first-audit bootstrap for clients joining mid-stream: a
// client that was not present for earlier rounds cannot know the
// previous root, so its auditor pins the chain from the first round it
// verifies onward. Servers never Adopt — the Recorder always Extends.
func (c *Chain) Adopt(round uint64, root [32]byte) {
	c.round, c.tip, c.have = round, root, true
}

// Extend verifies that (round, prev, root) continues the chain — prev
// must equal the current tip (zero when no tip) and round must advance —
// then records root as the new tip.
func (c *Chain) Extend(round uint64, prev, root [32]byte) error {
	var wantPrev [32]byte
	if c.have {
		wantPrev = c.tip
		if round <= c.round {
			return fmt.Errorf("%w: round %d after round %d", ErrChainNotNewer, round, c.round)
		}
	}
	if prev != wantPrev {
		return fmt.Errorf("%w: round %d", ErrChainBroken, round)
	}
	c.round, c.tip, c.have = round, root, true
	return nil
}

// chainMagic tags a marshalled chain (0xDD is the transcript codec
// family; see codec.go).
const chainVersion = 1

// MarshalBinary serializes the chain tip (for server persistence across
// restarts — the chain must survive so the next round's Prev links to the
// root committed before the crash).
func (c *Chain) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 3+8+32+1)
	out = append(out, codecMagic, tagChain, chainVersion)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.round)
	out = append(out, b[:]...)
	out = append(out, c.tip[:]...)
	if c.have {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out, nil
}

// UnmarshalChain restores a chain from MarshalBinary bytes.
func UnmarshalChain(p []byte) (*Chain, error) {
	if len(p) != 3+8+32+1 || p[0] != codecMagic || p[1] != tagChain {
		return nil, fmt.Errorf("transcript: not a chain blob")
	}
	if p[2] != chainVersion {
		return nil, fmt.Errorf("transcript: chain version %d, want %d", p[2], chainVersion)
	}
	c := &Chain{round: binary.LittleEndian.Uint64(p[3:])}
	copy(c.tip[:], p[11:])
	c.have = p[43] != 0
	return c, nil
}

// Recorder is the server-side transcript state across rounds: the root
// chain plus the signing key. One Recorder per aggregator (flat server,
// shard aggregator, or combiner); it is safe for concurrent use, though
// drivers build at most one transcript at a time.
type Recorder struct {
	mu     sync.Mutex
	chain  Chain
	signer *sig.Signer
}

// NewRecorder builds a recorder; signer may be nil (unsigned transcripts,
// semi-honest mode).
func NewRecorder(signer *sig.Signer) *Recorder {
	return &Recorder{signer: signer}
}

// Tip returns the chain tip (the last committed round root).
func (r *Recorder) Tip() ([32]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.chain.Tip()
}

// BuildRound builds, signs, and chains one flat-tier round transcript.
func (r *Recorder) BuildRound(round uint64, roster []RosterEntry, inputs []InputDigest) (*Transcript, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, _ := r.chain.Tip()
	t, err := Build(round, prev, roster, inputs, r.signer)
	if err != nil {
		return nil, err
	}
	if err := r.chain.Extend(round, prev, t.Root()); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildCombineRound builds, signs, and chains one combiner-tier round
// transcript.
func (r *Recorder) BuildCombineRound(round uint64, shards []ShardRoot) (*CombineTranscript, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, _ := r.chain.Tip()
	t, err := BuildCombine(round, prev, shards, r.signer)
	if err != nil {
		return nil, err
	}
	if err := r.chain.Extend(round, prev, t.Root()); err != nil {
		return nil, err
	}
	return t, nil
}

// MarshalBinary persists the recorder's chain (the signer is key
// material the deployment manages separately, exactly as the handshake
// signer is).
func (r *Recorder) MarshalBinary() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.chain.MarshalBinary()
}

// UnmarshalRecorder restores a recorder from MarshalBinary bytes; signer
// re-attaches the signing key (nil keeps the transcripts unsigned).
func UnmarshalRecorder(p []byte, signer *sig.Signer) (*Recorder, error) {
	c, err := UnmarshalChain(p)
	if err != nil {
		return nil, err
	}
	return &Recorder{chain: *c, signer: signer}, nil
}

// RootRecord is one audited round in a client's history.
type RootRecord struct {
	Round uint64
	Root  [32]byte
}

// Auditor is the client-side verification state across rounds: the
// pinned server key, the root chain, and the audit history. A nil
// serverPub accepts unsigned transcripts (semi-honest deployments).
type Auditor struct {
	mu        sync.Mutex
	serverPub []byte
	chain     Chain
	history   []RootRecord
}

// NewAuditor builds an auditor pinning serverPub (may be nil/empty).
func NewAuditor(serverPub []byte) *Auditor {
	return &Auditor{serverPub: append([]byte(nil), serverPub...)}
}

// VerifyRound runs the full client check for one flat-tier round —
// signature, roster inclusion, input inclusion, and chain continuity —
// and appends the root to the audit history on success. The first
// verified round is adopted as the chain anchor (trust-on-first-audit: a
// client joining or rejoining mid-stream cannot know the prior root);
// every later round must chain from it.
func (a *Auditor) VerifyRound(c *Commitment, p *Proof, self RosterEntry, digest [32]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := Verify(c, p, self, digest, a.serverPub); err != nil {
		return err
	}
	root := c.Root()
	if _, have := a.chain.Tip(); !have {
		a.chain.Adopt(c.Round, root)
	} else if err := a.chain.Extend(c.Round, c.Prev, root); err != nil {
		return err
	}
	a.history = append(a.history, RootRecord{Round: c.Round, Root: root})
	return nil
}

// History returns the audited (round, root) records in verification
// order — the client's cheap audit trail.
func (a *Auditor) History() []RootRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RootRecord(nil), a.history...)
}

// combineAuditor state is separate from the round chain: the combiner is
// its own signer with its own root history, so clients of a sharded
// deployment track two chains.
type combineState struct {
	chain Chain
}

// CombineAuditor audits the combiner tier: shard-root inclusion plus the
// combiner's own chain. Kept separate from Auditor so a flat deployment
// pays nothing for it.
type CombineAuditor struct {
	mu          sync.Mutex
	combinerPub []byte
	state       combineState
	history     []RootRecord
}

// NewCombineAuditor builds a combiner-tier auditor pinning combinerPub
// (may be nil/empty).
func NewCombineAuditor(combinerPub []byte) *CombineAuditor {
	return &CombineAuditor{combinerPub: append([]byte(nil), combinerPub...)}
}

// VerifyTier checks one combiner-tier commitment against the shard root
// the client verified at tier one, then extends the combiner chain (the
// first verified tier round is adopted as the anchor, exactly as in
// Auditor.VerifyRound).
func (a *CombineAuditor) VerifyTier(c *CombineCommitment, p *ShardProof, shardRoot [32]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := VerifyCombineTier(c, p, shardRoot, a.combinerPub); err != nil {
		return err
	}
	root := c.Root()
	if _, have := a.state.chain.Tip(); !have {
		a.state.chain.Adopt(c.Round, root)
	} else if err := a.state.chain.Extend(c.Round, c.Prev, root); err != nil {
		return err
	}
	a.history = append(a.history, RootRecord{Round: c.Round, Root: root})
	return nil
}

// History returns the audited combiner-tier (round, root) records.
func (a *CombineAuditor) History() []RootRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RootRecord(nil), a.history...)
}
