package transcript

import (
	"encoding/binary"
	"fmt"
)

// Fixed binary codec for the 0x60 frame family, in the 0xDB/0xDC style:
// a magic byte naming the family, a frame tag, a version byte, then
// little-endian fixed-width fields. See PROTOCOL.md ("Transcript frames
// (0x60 family)") for the byte-level layouts.
const (
	codecMagic   = 0xDD
	codecVersion = 1

	tagCommitment = 0x01
	tagProof      = 0x02
	tagCombine    = 0x03
	tagChain      = 0x04

	// maxPathLen bounds an audit path: 255 levels ≍ 2^255 leaves, far
	// beyond any roster, and keeps the length field one byte.
	maxPathLen = 255
)

func appendTranscriptHeader(out []byte, tag byte) []byte {
	return append(out, codecMagic, tag, codecVersion)
}

func decodeTranscriptHeader(p []byte, tag byte, what string) ([]byte, error) {
	if len(p) < 3 || p[0] != codecMagic || p[1] != tag {
		return nil, fmt.Errorf("transcript: not a %s frame", what)
	}
	if p[2] != codecVersion {
		return nil, fmt.Errorf("transcript: %s frame version %d, want %d", what, p[2], codecVersion)
	}
	return p[3:], nil
}

func appendU64(out []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(out, b[:]...)
}

func appendU32(out []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(out, b[:]...)
}

func appendSig(out, sig []byte) ([]byte, error) {
	if len(sig) > 0xFFFF {
		return nil, fmt.Errorf("transcript: signature of %d bytes", len(sig))
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(sig)))
	out = append(out, b[:]...)
	return append(out, sig...), nil
}

func decodeSig(p []byte) ([]byte, []byte, error) {
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("transcript: truncated signature length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return nil, nil, fmt.Errorf("transcript: truncated signature")
	}
	if n == 0 {
		return nil, p, nil
	}
	return append([]byte(nil), p[:n]...), p[n:], nil
}

func appendPath(out []byte, path [][32]byte) ([]byte, error) {
	if len(path) > maxPathLen {
		return nil, fmt.Errorf("transcript: audit path of %d levels", len(path))
	}
	out = append(out, byte(len(path)))
	for _, h := range path {
		out = append(out, h[:]...)
	}
	return out, nil
}

func decodePath(p []byte) ([][32]byte, []byte, error) {
	if len(p) < 1 {
		return nil, nil, fmt.Errorf("transcript: truncated path length")
	}
	n := int(p[0])
	p = p[1:]
	if len(p) < n*32 {
		return nil, nil, fmt.Errorf("transcript: truncated audit path")
	}
	var path [][32]byte
	if n > 0 {
		path = make([][32]byte, n)
		for i := range path {
			copy(path[i][:], p[i*32:])
		}
	}
	return path, p[n*32:], nil
}

func decodeHash(p []byte) ([32]byte, []byte, error) {
	var h [32]byte
	if len(p) < 32 {
		return h, nil, fmt.Errorf("transcript: truncated hash")
	}
	copy(h[:], p)
	return h, p[32:], nil
}

func decodeU64(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("transcript: truncated u64")
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

func decodeU32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("transcript: truncated u32")
	}
	return binary.LittleEndian.Uint32(p), p[4:], nil
}

// EncodeCommitment serializes a round commitment (the TagTranscriptCommit
// payload, broadcast to every survivor).
func EncodeCommitment(c *Commitment) ([]byte, error) {
	out := appendTranscriptHeader(nil, tagCommitment)
	out = appendU64(out, c.Round)
	out = append(out, c.Prev[:]...)
	out = append(out, c.RosterRoot[:]...)
	out = appendU32(out, c.RosterCount)
	out = append(out, c.InputRoot[:]...)
	out = appendU32(out, c.InputCount)
	return appendSig(out, c.Signature)
}

// DecodeCommitment parses an EncodeCommitment payload.
func DecodeCommitment(p []byte) (*Commitment, error) {
	p, err := decodeTranscriptHeader(p, tagCommitment, "commitment")
	if err != nil {
		return nil, err
	}
	var c Commitment
	if c.Round, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if c.Prev, p, err = decodeHash(p); err != nil {
		return nil, err
	}
	if c.RosterRoot, p, err = decodeHash(p); err != nil {
		return nil, err
	}
	if c.RosterCount, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if c.InputRoot, p, err = decodeHash(p); err != nil {
		return nil, err
	}
	if c.InputCount, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if c.Signature, p, err = decodeSig(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("transcript: %d trailing bytes after commitment", len(p))
	}
	return &c, nil
}

// EncodeProof serializes a per-client inclusion proof (the
// TagTranscriptProof payload, sent to that survivor only).
func EncodeProof(pr *Proof) ([]byte, error) {
	out := appendTranscriptHeader(nil, tagProof)
	out = appendU64(out, pr.Round)
	out = appendU64(out, pr.ID)
	out = appendU32(out, pr.RosterIndex)
	out, err := appendPath(out, pr.RosterPath)
	if err != nil {
		return nil, err
	}
	out = appendU32(out, pr.InputIndex)
	return appendPath(out, pr.InputPath)
}

// DecodeProof parses an EncodeProof payload.
func DecodeProof(p []byte) (*Proof, error) {
	p, err := decodeTranscriptHeader(p, tagProof, "proof")
	if err != nil {
		return nil, err
	}
	var pr Proof
	if pr.Round, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if pr.ID, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if pr.RosterIndex, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if pr.RosterPath, p, err = decodePath(p); err != nil {
		return nil, err
	}
	if pr.InputIndex, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if pr.InputPath, p, err = decodePath(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("transcript: %d trailing bytes after proof", len(p))
	}
	return &pr, nil
}

// CombineTierMsg is the TagCombineTranscript payload: the combiner-tier
// commitment bundled with the receiving shard's inclusion proof, so one
// frame gives a shard's clients the whole second hop of the audit.
type CombineTierMsg struct {
	Commitment CombineCommitment
	Proof      ShardProof
}

// EncodeCombineTier serializes a combiner-tier frame.
func EncodeCombineTier(m *CombineTierMsg) ([]byte, error) {
	out := appendTranscriptHeader(nil, tagCombine)
	out = appendU64(out, m.Commitment.Round)
	out = append(out, m.Commitment.Prev[:]...)
	out = append(out, m.Commitment.ShardRoot[:]...)
	out = appendU32(out, m.Commitment.ShardCount)
	out, err := appendSig(out, m.Commitment.Signature)
	if err != nil {
		return nil, err
	}
	out = appendU64(out, m.Proof.Round)
	out = appendU64(out, m.Proof.Shard)
	out = appendU32(out, m.Proof.Index)
	return appendPath(out, m.Proof.Path)
}

// DecodeCombineTier parses an EncodeCombineTier payload.
func DecodeCombineTier(p []byte) (*CombineTierMsg, error) {
	p, err := decodeTranscriptHeader(p, tagCombine, "combine-tier")
	if err != nil {
		return nil, err
	}
	var m CombineTierMsg
	if m.Commitment.Round, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if m.Commitment.Prev, p, err = decodeHash(p); err != nil {
		return nil, err
	}
	if m.Commitment.ShardRoot, p, err = decodeHash(p); err != nil {
		return nil, err
	}
	if m.Commitment.ShardCount, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if m.Commitment.Signature, p, err = decodeSig(p); err != nil {
		return nil, err
	}
	if m.Proof.Round, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if m.Proof.Shard, p, err = decodeU64(p); err != nil {
		return nil, err
	}
	if m.Proof.Index, p, err = decodeU32(p); err != nil {
		return nil, err
	}
	if m.Proof.Path, p, err = decodePath(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("transcript: %d trailing bytes after combine-tier frame", len(p))
	}
	return &m, nil
}
