// Package engine is the concurrent round engine shared by every protocol
// driver in the repository: deadline-bounded, streaming collection of one
// stage's messages at a time.
//
// The paper's central systems claim (§4.1, Appendix C schedule) is that
// aggregation latency hides when stage work is pipelined rather than
// barriered. The engine realizes that on the server's collection path:
// instead of buffering a whole stage's messages and then decoding and
// aggregating them in one barrier, Collect admits messages as they
// arrive, decodes them concurrently across a bounded worker pool, and
// feeds an incremental per-message sink (the Add* methods of
// secagg.Server and lightsecagg.Server) behind a pipeline.Gate, which
// serializes the sink in admission order while the next arrivals are
// still being decoded. A 64-client masked-input stage therefore costs
// collection time plus an O(1) tail merge, not collection time plus n
// decodes plus n vector adds.
//
// The engine is protocol-agnostic: message bodies are opaque (raw frame
// payloads on the wire, typed messages in-process), and the stage spec
// supplies the decode and apply steps. All four round drivers run on it —
// core.RunWireServer and lightsecagg.RunWireServer over a real transport
// (via TransportSource), secagg.Run and lightsecagg.Run in-process with
// clients as goroutines. Stages that need any-K-of-N completion rather
// than all-of-N (LightSecAgg's one-shot recovery accepts any U aggregate
// shares) set Stage.Quorum. See ARCHITECTURE.md for how the engine maps
// onto the paper's pipeline stages.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/transport"
)

// Msg is one protocol message offered to the engine. Body is opaque: the
// wire driver passes the raw frame payload ([]byte), the in-process
// driver passes typed protocol messages (or an error, which the driver's
// Apply surfaces to abort the round).
type Msg struct {
	From  uint64
	Stage int
	Body  any
}

// Re-key handshake frame tags, shared by every wire driver. The per-driver
// round stages start at tag 0 (core: 0–11, lightsecagg: 0–7), so the
// handshake tags are reserved well above both spaces: one connection — and
// one engine fan-in — carries a handshake followed by round traffic
// without a handshake frame ever aliasing a round stage, and vice versa.
// The handshake message codecs live in package core (core/handshake.go);
// PROTOCOL.md documents the byte layouts and the state machine.
const (
	TagRoundOffer  = 0x40 // server → clients: signed RoundOffer
	TagRoundAck    = 0x41 // clients → server: RoundAck (session state hash)
	TagRoundCommit = 0x42 // server → clients: signed RoundCommit (final decision)
	TagRoundHello  = 0x43 // clients → server: ready for the next offer
)

// Combiner frame tags: the shard-aggregator ↔ root-combiner leg of the
// two-level sharded topology (core.RunCombiner / core.RunShardWire). Like
// the handshake family they are reserved above every round-stage space, so
// a combiner connection can in principle multiplex with round traffic
// without tag aliasing. The payload codecs live in internal/combine;
// PROTOCOL.md documents the byte layouts and the degraded-round semantics
// (a shard whose partial never arrives degrades the fold, it does not
// abort it).
const (
	TagShardHello    = 0x50 // shard aggregator → combiner: shard online for the round
	TagShardPartial  = 0x51 // shard aggregator → combiner: sealed partial sum + accounting
	TagCombineReport = 0x52 // combiner → shard aggregators: folded RoundReport
)

// Transcript frame tags: the verifiable-round integrity layer
// (internal/transcript). All three are server→client pushes that follow
// the round result — they never enter a Collect, so they share the
// reserved space above the round stages purely to keep tag allocation
// uniform. The payload codecs live in internal/transcript; PROTOCOL.md
// documents the byte layouts and the audit flow.
const (
	TagTranscriptCommit  = 0x60 // server → survivors: signed round Commitment
	TagTranscriptProof   = 0x61 // server → one survivor: its inclusion Proof
	TagCombineTranscript = 0x62 // combiner → shard → survivors: combiner-tier commitment + shard proof
)

// parkable reports whether a mismatched frame should be parked for a
// later Collect instead of discarded. Only RoundHello qualifies: a client
// that bounces mid-round re-dials and sends its next hello immediately,
// while the server is still collecting the in-flight round — dropping
// that hello would make the next handshake wait out its full deadline
// for a frame that already arrived, and hellos are idempotent presence
// signals, safe to replay. Every other tag is NOT parked: acks are
// solicited inside a live ack-Collect, so an ack that arrives outside
// one is stale by definition — parking it would let it shadow the
// sender's genuine ack at the next handshake (admitted first, failing
// the round check as a re-key vote, with the fresh ack then dropped as a
// duplicate) and force a spurious fleet re-key. Offers and commits flow
// server→client and never reach a server Collect; round-stage tags rely
// on the existing discard semantics.
func parkable(t int) bool { return t == TagRoundHello }

// maxParked bounds the parking map against hostile senders inventing
// ids; real deployments park at most a few frames per bounced client.
const maxParked = 1024

// RecvFunc blocks for the next message from any participant. It must
// honor ctx cancellation; the engine treats any error as "no more
// messages for this stage" (deadline semantics), leaving abort decisions
// to the per-stage threshold checks in the sink's Seal step.
type RecvFunc func(ctx context.Context) (Msg, error)

// Stage describes one deadline-bounded collection stage.
type Stage struct {
	// Name labels the stage in errors and traces.
	Name string
	// Tag is the message stage tag to admit; mismatched messages are
	// discarded (stale retransmits, out-of-order or hostile frames).
	Tag int
	// Expect lists the senders whose messages the stage waits for.
	// Messages from other senders are discarded; duplicates from an
	// admitted sender are discarded (replay idempotence).
	Expect []uint64
	// Quorum, when positive, completes the stage as soon as that many
	// expected senders were admitted instead of waiting for all of them —
	// the any-K-of-N collection LightSecAgg's one-shot recovery needs
	// (any U aggregate shares reconstruct the mask sum; waiting for every
	// survivor would add a straggler tail for no protocol benefit). 0
	// means all of Expect.
	Quorum int
	// QuorumMet, when non-nil, is a predicate quorum: it is consulted
	// after each successful Apply (under the same serialization as the
	// sink, so it may read sink state without locking) and completes the
	// stage as soon as it returns true. It expresses completion
	// conditions a plain count cannot — SecAgg+'s unmask stage is done
	// when every reconstruction *cohort* holds t shares, not when any t
	// global responses arrived. Composes with Quorum and Expect: the
	// stage ends at whichever trigger fires first.
	QuorumMet func() bool
	// Deadline bounds the collection. The stage ends when every expected
	// sender was admitted or the deadline fires, whichever is first; ≤0
	// means the stage is bounded only by ctx (in-process rounds, where
	// every expected participant deterministically answers or errors).
	Deadline time.Duration
	// Decode transforms an admitted message body. Decodes run
	// concurrently across the engine's worker pool — this is the
	// decode→aggregate overlap. nil passes the body through and applies
	// inline on the admission loop.
	Decode func(m Msg) (any, error)
	// Apply feeds one decoded body to the stage sink. The engine
	// serializes Apply calls in admission order (pipeline.Gate), so the
	// sink needs no internal locking.
	Apply func(from uint64, body any) error
}

// Engine drives stage collection over one message source. An Engine is
// bound to one round; Collect must be called for one stage at a time, in
// protocol order, from a single goroutine.
type Engine struct {
	recv    RecvFunc
	workers int

	// parked holds RoundHello frames that arrived during a stage with a
	// different tag (see parkable), keyed by (tag, sender) so a
	// retransmit replaces rather than accumulates. Only touched from
	// Collect's admission loop (single-goroutine contract), so no
	// locking.
	parked map[parkedKey]Msg
}

type parkedKey struct {
	tag  int
	from uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the concurrent decode pool (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// New builds an engine over the message source.
func New(recv RecvFunc, opts ...Option) *Engine {
	e := &Engine{recv: recv, workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	return e
}

// Collect runs one stage: it admits matching messages until every
// expected sender answered or the deadline fired, overlapping Decode and
// Apply as described on Stage, and returns the senders admitted in
// admission order. A Decode or Apply error aborts the stage (remaining
// in-flight work drains first); a deadline is not an error — the caller's
// Seal step decides whether the partial stage clears the protocol
// threshold.
func (e *Engine) Collect(ctx context.Context, s Stage) ([]uint64, error) {
	var cancel context.CancelFunc
	if s.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	want := make(map[uint64]bool, len(s.Expect))
	for _, id := range s.Expect {
		want[id] = true
	}
	admitted := make([]uint64, 0, len(want))
	seen := make(map[uint64]bool, len(want))

	var (
		gate = pipeline.NewGate()
		sem  = make(chan struct{}, e.workers)
		wg   sync.WaitGroup

		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel() // unblock recv: the stage is aborting
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	target := len(want)
	if s.Quorum > 0 && s.Quorum < target {
		target = s.Quorum
	}
	// process admits one matching message, returning false when the stage
	// must stop (inline apply error).
	process := func(m Msg) bool {
		seen[m.From] = true
		admitted = append(admitted, m.From)
		if s.Decode == nil {
			// Nothing to overlap: apply inline, no goroutine hop.
			if err := s.Apply(m.From, m.Body); err != nil {
				fail(err)
				return false
			}
			if s.QuorumMet != nil && s.QuorumMet() {
				return false // predicate quorum met: stop admitting, no error
			}
			return true
		}
		// Reserve the apply slot now (admission order), decode on a
		// worker, then apply behind the gate. Decoding of later arrivals
		// overlaps the serialized applies of earlier ones.
		ticket := gate.Reserve()
		wg.Add(1)
		sem <- struct{}{}
		go func(m Msg, ticket pipeline.Ticket) {
			defer wg.Done()
			defer func() { <-sem }()
			body, err := s.Decode(m)
			gate.Wait(ticket)
			defer gate.Release()
			if err == nil && !failed() {
				err = s.Apply(m.From, body)
				if err == nil && s.QuorumMet != nil && s.QuorumMet() {
					cancel() // predicate quorum met: unblock recv, drain, return
				}
			}
			if err != nil {
				fail(err)
			}
		}(m, ticket)
		return true
	}

	// Replay parked hello frames addressed to this stage before reading
	// live traffic (see parkable); entries for this tag are consumed
	// either way.
	stopped := false
	for key, m := range e.parked {
		if key.tag != s.Tag {
			continue
		}
		delete(e.parked, key)
		if stopped || len(seen) >= target || !want[m.From] || seen[m.From] {
			continue
		}
		if !process(m) {
			stopped = true
		}
	}
	for !stopped && len(seen) < target {
		m, err := e.recv(ctx)
		if err != nil {
			break // deadline or abort: proceed with what we have
		}
		if m.Stage != s.Tag || !want[m.From] || seen[m.From] {
			// Stale, out-of-order, unexpected, or duplicate — discarded,
			// except hellos during a *different* stage, which are parked
			// for the handshake Collect they belong to.
			if parkable(m.Stage) && m.Stage != s.Tag && len(e.parked) < maxParked {
				if e.parked == nil {
					e.parked = make(map[parkedKey]Msg)
				}
				e.parked[parkedKey{tag: m.Stage, from: m.From}] = m
			}
			continue
		}
		if !process(m) {
			break
		}
	}
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return admitted, err
}

// TransportSource adapts a transport server endpoint to the engine's
// message source: a fan-in goroutine drains the connection into a
// buffered channel for the round's whole lifetime, so slow stage
// processing (decode pool full, apply in progress) never backpressures
// the transport mid-collection. ctx must span the round; cancelling it
// stops the fan-in. Both wire drivers (core and lightsecagg) build their
// engines on this source.
func TransportSource(ctx context.Context, conn transport.ServerConn) RecvFunc {
	frames := make(chan transport.Frame, 256)
	go func() {
		defer close(frames)
		for {
			f, err := conn.Recv(ctx)
			if err != nil {
				return // round over (ctx) or endpoint closed
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				return
			}
		}
	}()
	return func(ctx context.Context) (Msg, error) {
		select {
		case f, ok := <-frames:
			if !ok {
				return Msg{}, transport.ErrClosed
			}
			return Msg{From: f.From, Stage: f.Stage, Body: f.Payload}, nil
		case <-ctx.Done():
			return Msg{}, ctx.Err()
		}
	}
}
