package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// chanRecv adapts a channel to a RecvFunc.
func chanRecv(ch <-chan Msg) RecvFunc {
	return func(ctx context.Context) (Msg, error) {
		select {
		case m, ok := <-ch:
			if !ok {
				return Msg{}, errors.New("source closed")
			}
			return m, nil
		case <-ctx.Done():
			return Msg{}, ctx.Err()
		}
	}
}

// TestCollectAppliesInAdmissionOrder: decodes finish wildly out of order
// (earlier admissions sleep longer), yet applies must land in admission
// order — the pipeline.Gate contract the incremental server relies on.
func TestCollectAppliesInAdmissionOrder(t *testing.T) {
	const n = 8
	ch := make(chan Msg, n)
	for i := 1; i <= n; i++ {
		ch <- Msg{From: uint64(i), Stage: 1, Body: i}
	}
	expect := make([]uint64, n)
	for i := range expect {
		expect[i] = uint64(i + 1)
	}
	var mu sync.Mutex
	var applied []uint64
	eng := New(chanRecv(ch), WithWorkers(4))
	admitted, err := eng.Collect(context.Background(), Stage{
		Tag: 1, Expect: expect,
		Decode: func(m Msg) (any, error) {
			// Earlier admissions decode slower: completion order is the
			// reverse of admission order.
			time.Sleep(time.Duration(n-m.Body.(int)) * 3 * time.Millisecond)
			return m.Body, nil
		},
		Apply: func(from uint64, body any) error {
			mu.Lock()
			applied = append(applied, from)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != n || len(applied) != n {
		t.Fatalf("admitted %d applied %d, want %d", len(admitted), len(applied), n)
	}
	for i := range admitted {
		if applied[i] != admitted[i] {
			t.Fatalf("apply order %v != admission order %v", applied, admitted)
		}
	}
}

// TestCollectFiltersStaleDupUnexpected: wrong-tag, unknown-sender, and
// duplicate messages are discarded without reaching Apply.
func TestCollectFiltersStaleDupUnexpected(t *testing.T) {
	ch := make(chan Msg, 16)
	ch <- Msg{From: 1, Stage: 0, Body: "stale"}   // wrong tag
	ch <- Msg{From: 9, Stage: 2, Body: "unknown"} // unexpected sender
	ch <- Msg{From: 1, Stage: 2, Body: "first"}
	ch <- Msg{From: 1, Stage: 2, Body: "dup"} // duplicate
	ch <- Msg{From: 2, Stage: 99, Body: "future"}
	ch <- Msg{From: 2, Stage: 2, Body: "second"}
	var got []string
	eng := New(chanRecv(ch))
	admitted, err := eng.Collect(context.Background(), Stage{
		Tag: 2, Expect: []uint64{1, 2},
		Apply: func(from uint64, body any) error {
			got = append(got, body.(string))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("admitted %v applied %v", admitted, got)
	}
}

// TestCollectDeadlinePartial: a never-answering sender must not hang the
// stage; Collect returns the partial admission set without error (the
// caller's Seal enforces thresholds).
func TestCollectDeadlinePartial(t *testing.T) {
	ch := make(chan Msg, 2)
	ch <- Msg{From: 1, Stage: 3, Body: nil}
	start := time.Now()
	eng := New(chanRecv(ch))
	admitted, err := eng.Collect(context.Background(), Stage{
		Tag: 3, Expect: []uint64{1, 2}, Deadline: 50 * time.Millisecond,
		Apply: func(uint64, any) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 1 || admitted[0] != 1 {
		t.Fatalf("admitted %v, want [1]", admitted)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline took %v", el)
	}
}

// TestCollectAbortsOnApplyError: an Apply error aborts the stage promptly
// even though more expected senders never answer (no deadline wait).
func TestCollectAbortsOnApplyError(t *testing.T) {
	ch := make(chan Msg, 2)
	ch <- Msg{From: 1, Stage: 4, Body: []byte{1}}
	boom := errors.New("boom")
	start := time.Now()
	eng := New(chanRecv(ch))
	_, err := eng.Collect(context.Background(), Stage{
		Tag: 4, Expect: []uint64{1, 2}, Deadline: 30 * time.Second,
		Decode: func(m Msg) (any, error) { return m.Body, nil },
		Apply:  func(uint64, any) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("abort took %v, should not wait out the deadline", el)
	}
}

// TestCollectAbortsOnDecodeError: same for a Decode error raised on a
// worker while other decodes are in flight.
func TestCollectAbortsOnDecodeError(t *testing.T) {
	const n = 6
	ch := make(chan Msg, n)
	expect := make([]uint64, n)
	for i := 1; i <= n; i++ {
		ch <- Msg{From: uint64(i), Stage: 5, Body: i}
		expect[i-1] = uint64(i)
	}
	bad := errors.New("bad frame")
	var applies int
	var mu sync.Mutex
	eng := New(chanRecv(ch), WithWorkers(3))
	_, err := eng.Collect(context.Background(), Stage{
		Tag: 5, Expect: expect, Deadline: 30 * time.Second,
		Decode: func(m Msg) (any, error) {
			if m.Body.(int) == 2 {
				return nil, bad
			}
			return m.Body, nil
		},
		Apply: func(uint64, any) error {
			mu.Lock()
			applies++
			mu.Unlock()
			return nil
		},
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want bad frame", err)
	}
	if applies >= n {
		t.Fatalf("all %d applies ran despite decode error", applies)
	}
}

// TestCollectConcurrentSenders: many goroutines racing frames (with
// duplicates and stale tags) into the source; every expected sender lands
// exactly once and the stage terminates. Exercised with -race in CI.
func TestCollectConcurrentSenders(t *testing.T) {
	const n = 32
	ch := make(chan Msg, 4*n)
	expect := make([]uint64, n)
	var sendWG sync.WaitGroup
	for i := 1; i <= n; i++ {
		expect[i-1] = uint64(i)
		sendWG.Add(1)
		go func(id uint64) {
			defer sendWG.Done()
			ch <- Msg{From: id, Stage: 6, Body: fmt.Sprintf("stale-%d", id)} // wrong tag
			ch <- Msg{From: id, Stage: 7, Body: id}
			ch <- Msg{From: id, Stage: 7, Body: id} // duplicate
		}(uint64(i))
	}
	counts := make(map[uint64]int, n)
	var mu sync.Mutex
	eng := New(chanRecv(ch), WithWorkers(4))
	admitted, err := eng.Collect(context.Background(), Stage{
		Tag: 7, Expect: expect, Deadline: 30 * time.Second,
		Decode: func(m Msg) (any, error) { return m.Body, nil },
		Apply: func(from uint64, body any) error {
			if body.(uint64) != from {
				return fmt.Errorf("body %v from %d", body, from)
			}
			mu.Lock()
			counts[from]++
			mu.Unlock()
			return nil
		},
	})
	sendWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != n {
		t.Fatalf("admitted %d senders, want %d", len(admitted), n)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("sender %d applied %d times", id, c)
		}
	}
}

// TestCollectQuorum: a stage with Quorum = k completes as soon as k
// expected senders were admitted, without waiting for the rest — the
// any-K-of-N collection LightSecAgg's one-shot recovery stage uses. The
// remaining senders never answer, so an all-of-N stage would only end at
// the deadline; the quorum stage must end immediately.
func TestCollectQuorum(t *testing.T) {
	ch := make(chan Msg, 8)
	for i := 1; i <= 3; i++ { // only 3 of 5 expected senders answer
		ch <- Msg{From: uint64(i), Stage: 2, Body: i}
	}
	var applied []uint64
	start := time.Now()
	admitted, err := New(chanRecv(ch)).Collect(context.Background(), Stage{
		Tag: 2, Expect: []uint64{1, 2, 3, 4, 5}, Quorum: 3,
		Deadline: 5 * time.Second,
		Apply: func(from uint64, body any) error {
			applied = append(applied, from)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 3 || len(applied) != 3 {
		t.Fatalf("admitted %v applied %v, want 3 each", admitted, applied)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("quorum stage took %v — must not wait for the deadline", elapsed)
	}
}

// TestCollectQuorumAboveExpectIsAllOfN: a quorum larger than the expected
// set degrades to all-of-N rather than waiting forever for senders that
// do not exist.
func TestCollectQuorumAboveExpectIsAllOfN(t *testing.T) {
	ch := make(chan Msg, 4)
	ch <- Msg{From: 1, Stage: 3, Body: 1}
	ch <- Msg{From: 2, Stage: 3, Body: 2}
	admitted, err := New(chanRecv(ch)).Collect(context.Background(), Stage{
		Tag: 3, Expect: []uint64{1, 2}, Quorum: 10,
		Apply: func(uint64, any) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 2 {
		t.Fatalf("admitted %v, want both expected senders", admitted)
	}
}

// TestCollectParksHandshakeFrames pins the restart-tolerance contract: a
// handshake frame arriving during a round-stage Collect is parked, not
// discarded, and replayed to the Collect it belongs to — while round
// frames with wrong tags are still dropped.
func TestCollectParksHandshakeFrames(t *testing.T) {
	frames := []Msg{
		{From: 2, Stage: TagRoundHello, Body: "early hello"}, // mid-round re-dial
		{From: 2, Stage: TagRoundAck, Body: "stale ack"},     // must NOT be parked (stale by definition)
		{From: 9, Stage: 7, Body: "stale round frame"},       // must be discarded
		{From: 1, Stage: 1, Body: "stage payload"},
	}
	i := 0
	recv := func(ctx context.Context) (Msg, error) {
		if i < len(frames) {
			m := frames[i]
			i++
			return m, nil
		}
		<-ctx.Done()
		return Msg{}, ctx.Err()
	}
	eng := New(recv)

	// The round stage admits client 1 and parks client 2's hello.
	var got []any
	admitted, err := eng.Collect(context.Background(), Stage{
		Name: "round-stage", Tag: 1, Expect: []uint64{1},
		Apply: func(_ uint64, body any) error { got = append(got, body); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 1 || admitted[0] != 1 {
		t.Fatalf("round stage admitted %v, want [1]", admitted)
	}

	// The hello stage completes from the parked frame alone: the source
	// is exhausted, so only the parked replay can satisfy it before the
	// deadline.
	admitted, err = eng.Collect(context.Background(), Stage{
		Name: "hello", Tag: TagRoundHello, Expect: []uint64{2},
		Deadline: 100 * time.Millisecond,
		Apply:    func(_ uint64, body any) error { got = append(got, body); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admitted) != 1 || admitted[0] != 2 {
		t.Fatalf("hello stage admitted %v, want [2] (parked frame lost)", admitted)
	}
	if len(got) != 2 || got[0] != "stage payload" || got[1] != "early hello" {
		t.Fatalf("applied bodies = %v", got)
	}
	// The parked entry was consumed: a re-run must wait out its deadline
	// empty-handed.
	admitted, err = eng.Collect(context.Background(), Stage{
		Name: "hello-again", Tag: TagRoundHello, Expect: []uint64{2},
		Deadline: 50 * time.Millisecond,
		Apply:    func(uint64, any) error { return nil },
	})
	if err != nil || len(admitted) != 0 {
		t.Fatalf("replayed parked frame twice: admitted=%v err=%v", admitted, err)
	}
	// The stale ack was discarded, not parked: an ack Collect must not
	// see it (a parked stale ack would shadow the sender's genuine ack at
	// the next handshake and force a spurious re-key).
	admitted, err = eng.Collect(context.Background(), Stage{
		Name: "ack", Tag: TagRoundAck, Expect: []uint64{2},
		Deadline: 50 * time.Millisecond,
		Apply:    func(uint64, any) error { return nil },
	})
	if err != nil || len(admitted) != 0 {
		t.Fatalf("stale ack was parked: admitted=%v err=%v", admitted, err)
	}
}
