// Package pipeline implements Dordis's pipeline-parallel aggregation (§4):
// the stage abstraction of Table 1, the performance model of Eq. 3, the
// profiling-based parameter fit, the discrete-event schedule simulator of
// Appendix C, the optimal chunk-count solver, and a concurrent executor
// that runs real chunk-aggregation work under the same resource
// constraints.
package pipeline

import "fmt"

// Resource is a system resource with exclusive occupancy: at any moment at
// most one chunk-stage runs on each resource (Appendix C, principle 1).
type Resource int

// The three resource classes of §4 ("Technical Intuition").
const (
	ClientCompute Resource = iota // c-comp
	Communication                 // comm
	ServerCompute                 // s-comp
	numResources
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case ClientCompute:
		return "c-comp"
	case Communication:
		return "comm"
	case ServerCompute:
		return "s-comp"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// StageSpec is one pipeline stage: a named group of consecutive workflow
// steps sharing a dominant resource (Table 1).
type StageSpec struct {
	Name     string
	Resource Resource
}

// Workflow is an ordered stage sequence. By construction of the staging
// (grouping consecutive same-resource steps), adjacent stages use
// different resources.
type Workflow []StageSpec

// Validate checks the adjacency property and non-emptiness.
func (w Workflow) Validate() error {
	if len(w) == 0 {
		return fmt.Errorf("pipeline: empty workflow")
	}
	for i := 1; i < len(w); i++ {
		if w[i].Resource == w[i-1].Resource {
			return fmt.Errorf("pipeline: stages %q and %q share resource %v (should be merged)",
				w[i-1].Name, w[i].Name, w[i].Resource)
		}
	}
	return nil
}

// DistributedDPWorkflow returns the 5-stage staging of the
// dropout-resilient distributed-DP workflow from Table 1:
//
//	1 (c-comp): clients encode updates, generate keys, establish shared
//	            secrets, mask encoded updates
//	2 (comm):   clients upload masked updates
//	3 (s-comp): server deals with dropout, computes the aggregate, updates
//	            the global model
//	4 (comm):   server dispatches the aggregate
//	5 (c-comp): clients decode and use the aggregate
func DistributedDPWorkflow() Workflow {
	return Workflow{
		{Name: "client-encode-mask", Resource: ClientCompute},
		{Name: "upload", Resource: Communication},
		{Name: "server-aggregate", Resource: ServerCompute},
		{Name: "dispatch", Resource: Communication},
		{Name: "client-decode", Resource: ClientCompute},
	}
}

// prevSameResource returns, for each stage, the index of the latest earlier
// stage using the same resource, or -1 (the q of Appendix C constraint 5).
func (w Workflow) prevSameResource() []int {
	out := make([]int, len(w))
	for s := range w {
		out[s] = -1
		for q := s - 1; q >= 0; q-- {
			if w[q].Resource == w[s].Resource {
				out[s] = q
				break
			}
		}
	}
	return out
}
