package pipeline

import (
	"fmt"
	"sync"
)

// OnlineProfiler implements the §4.2 remark that "such lightweight
// profiling can also be conducted online by interleaving it with the
// training workflow": it accumulates observed (d, m, τ) stage timings
// across rounds in bounded windows and refits the Eq.-3 coefficients on
// demand, so the optimal chunk count tracks drifting conditions (slow
// clients joining, bandwidth changes) without a dedicated offline
// micro-benchmark phase.
//
// It is safe for concurrent use: measurement callbacks may arrive from the
// executor's chunk goroutines.
type OnlineProfiler struct {
	workflow Workflow
	window   int

	mu      sync.Mutex
	samples [][]Sample // per stage, ring-buffered to window
	next    []int      // per stage, next overwrite position
	full    []bool     // per stage, whether the window wrapped
}

// NewOnlineProfiler creates a profiler for the workflow keeping the most
// recent window samples per stage (window ≤ 0 selects 64).
func NewOnlineProfiler(w Workflow, window int) (*OnlineProfiler, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 64
	}
	p := &OnlineProfiler{
		workflow: w,
		window:   window,
		samples:  make([][]Sample, len(w)),
		next:     make([]int, len(w)),
		full:     make([]bool, len(w)),
	}
	for s := range p.samples {
		p.samples[s] = make([]Sample, 0, window)
	}
	return p, nil
}

// Observe records one measured sub-task execution.
func (p *OnlineProfiler) Observe(stage int, d float64, m int, tau float64) error {
	if stage < 0 || stage >= len(p.workflow) {
		return fmt.Errorf("pipeline: stage %d out of range", stage)
	}
	if m < 1 || tau < 0 {
		return fmt.Errorf("pipeline: invalid observation m=%d τ=%v", m, tau)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Sample{D: d, M: m, Tau: tau}
	if len(p.samples[stage]) < p.window {
		p.samples[stage] = append(p.samples[stage], s)
	} else {
		p.samples[stage][p.next[stage]] = s
		p.full[stage] = true
	}
	p.next[stage] = (p.next[stage] + 1) % p.window
	return nil
}

// SampleCount returns the number of retained observations for a stage.
func (p *OnlineProfiler) SampleCount(stage int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.samples[stage])
}

// Ready reports whether every stage has enough diverse samples to fit.
func (p *OnlineProfiler) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := range p.samples {
		if len(p.samples[s]) < 3 {
			return false
		}
	}
	return true
}

// Fit refits the performance model from the retained windows.
func (p *OnlineProfiler) Fit() (PerfModel, error) {
	p.mu.Lock()
	perStage := make([][]Sample, len(p.samples))
	for s := range p.samples {
		perStage[s] = append([]Sample(nil), p.samples[s]...)
	}
	p.mu.Unlock()
	return FitModel(p.workflow, perStage)
}

// AutoTuner combines the online profiler with the optimal-m solver: each
// round it recommends a chunk count from the freshest fit (falling back to
// a default until the profiler is ready), and ingests that round's stage
// timings afterwards. This is the closed loop of Fig. 7's
// Profiling → Scheduling → Pipelining path.
type AutoTuner struct {
	profiler *OnlineProfiler
	maxM     int
	defaultM int
}

// NewAutoTuner creates a tuner. defaultM is used until the profiler has
// enough observations; maxM bounds the solver (≤ 0 = DefaultMaxChunks).
func NewAutoTuner(w Workflow, window, defaultM, maxM int) (*AutoTuner, error) {
	if defaultM < 1 {
		return nil, fmt.Errorf("pipeline: defaultM %d < 1", defaultM)
	}
	prof, err := NewOnlineProfiler(w, window)
	if err != nil {
		return nil, err
	}
	return &AutoTuner{profiler: prof, maxM: maxM, defaultM: defaultM}, nil
}

// Profiler exposes the underlying profiler for observation feeding.
func (t *AutoTuner) Profiler() *OnlineProfiler { return t.profiler }

// Recommend returns the chunk count to use for an update of size d.
func (t *AutoTuner) Recommend(d float64) int {
	if !t.profiler.Ready() {
		return t.defaultM
	}
	pm, err := t.profiler.Fit()
	if err != nil {
		return t.defaultM
	}
	m, _, err := OptimalChunks(t.profiler.workflow, pm, d, t.maxM)
	if err != nil {
		return t.defaultM
	}
	return m
}
