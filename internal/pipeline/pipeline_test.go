package pipeline

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkflowValidate(t *testing.T) {
	if err := DistributedDPWorkflow().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Workflow{{Name: "a", Resource: ClientCompute}, {Name: "b", Resource: ClientCompute}}
	if err := bad.Validate(); err == nil {
		t.Error("adjacent same-resource stages should be rejected")
	}
	if err := (Workflow{}).Validate(); err == nil {
		t.Error("empty workflow should be rejected")
	}
}

func TestTable1Structure(t *testing.T) {
	w := DistributedDPWorkflow()
	wantRes := []Resource{ClientCompute, Communication, ServerCompute, Communication, ClientCompute}
	if len(w) != 5 {
		t.Fatalf("workflow has %d stages, want 5", len(w))
	}
	for i, r := range wantRes {
		if w[i].Resource != r {
			t.Errorf("stage %d resource %v, want %v", i, w[i].Resource, r)
		}
	}
	prev := w.prevSameResource()
	want := []int{-1, -1, -1, 1, 0}
	for i := range want {
		if prev[i] != want[i] {
			t.Errorf("prevSameResource[%d] = %d, want %d", i, prev[i], want[i])
		}
	}
}

func TestFitStageRecoversExactBetas(t *testing.T) {
	truth := Betas{0.002, 0.5, 3.0}
	var samples []Sample
	for _, d := range []float64{1e4, 1e5, 1e6} {
		for m := 1; m <= 8; m++ {
			tau := truth[0]*d/float64(m) + truth[1]*float64(m) + truth[2]
			samples = append(samples, Sample{D: d, M: m, Tau: tau})
		}
	}
	got, err := FitStage(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-6*(1+truth[i]) {
			t.Errorf("β%d = %v, want %v", i+1, got[i], truth[i])
		}
	}
}

func TestFitStageErrors(t *testing.T) {
	if _, err := FitStage([]Sample{{D: 1, M: 1, Tau: 1}}); err == nil {
		t.Error("too few samples should error")
	}
	// Degenerate: all identical rows.
	same := []Sample{{D: 10, M: 2, Tau: 5}, {D: 10, M: 2, Tau: 5}, {D: 10, M: 2, Tau: 5}}
	if _, err := FitStage(same); err == nil {
		t.Error("degenerate design should error")
	}
	if _, err := FitStage([]Sample{{D: 1, M: 0, Tau: 1}, {D: 2, M: 1, Tau: 1}, {D: 3, M: 2, Tau: 1}}); err == nil {
		t.Error("m=0 sample should error")
	}
}

func TestFitStageClampsNegative(t *testing.T) {
	// Noisy data that would fit a slightly negative intervention term.
	samples := []Sample{
		{D: 100, M: 1, Tau: 100.0}, {D: 100, M: 2, Tau: 49.9}, {D: 100, M: 4, Tau: 25.2},
		{D: 200, M: 1, Tau: 200.1}, {D: 200, M: 2, Tau: 99.8},
	}
	b, err := FitStage(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v < 0 {
			t.Errorf("β%d = %v negative after clamp", i+1, v)
		}
	}
}

func TestSimulateHandComputed(t *testing.T) {
	// Two stages (c-comp, comm), τ = [1, 2], m = 2:
	// s0c0 [0,1], s0c1 [1,2]; s1c0 [1,3], s1c1 [3,5]. Makespan 5.
	w := Workflow{{Name: "a", Resource: ClientCompute}, {Name: "b", Resource: Communication}}
	sched, err := Simulate(w, []float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan != 5 {
		t.Fatalf("makespan %v, want 5", sched.Makespan)
	}
	want := []Interval{
		{0, 0, 0, 1}, {0, 1, 1, 2},
		{1, 0, 1, 3}, {1, 1, 3, 5},
	}
	for i, iv := range want {
		if sched.Intervals[i] != iv {
			t.Errorf("interval %d = %+v, want %+v", i, sched.Intervals[i], iv)
		}
	}
}

func TestSimulateSameResourceOrdering(t *testing.T) {
	// Figure 6 shape: stages 1 and 5 share c-comp; stage 5 chunk 0 must
	// wait for stage 1 chunk m−1 (constraint 5, second case).
	w := DistributedDPWorkflow()
	tau := []float64{1, 1, 1, 1, 1}
	sched, err := Simulate(w, tau, 3)
	if err != nil {
		t.Fatal(err)
	}
	var endS0LastChunk, startS4Chunk0 float64
	for _, iv := range sched.Intervals {
		if iv.Stage == 0 && iv.Chunk == 2 {
			endS0LastChunk = iv.End
		}
		if iv.Stage == 4 && iv.Chunk == 0 {
			startS4Chunk0 = iv.Start
		}
	}
	if startS4Chunk0 < endS0LastChunk {
		t.Errorf("stage 5 started at %v before stage 1 finished all chunks at %v",
			startS4Chunk0, endS0LastChunk)
	}
}

func TestSimulateResourceExclusivity(t *testing.T) {
	// No two intervals on the same resource may overlap, for various m.
	w := DistributedDPWorkflow()
	f := func(m8 uint8, t1, t2, t3, t4, t5 uint8) bool {
		m := int(m8%12) + 1
		tau := []float64{float64(t1%9) + 0.5, float64(t2%9) + 0.5, float64(t3%9) + 0.5,
			float64(t4%9) + 0.5, float64(t5%9) + 0.5}
		sched, err := Simulate(w, tau, m)
		if err != nil {
			return false
		}
		byRes := map[Resource][]Interval{}
		for _, iv := range sched.Intervals {
			byRes[w[iv.Stage].Resource] = append(byRes[w[iv.Stage].Resource], iv)
		}
		for _, ivs := range byRes {
			for i := range ivs {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.Start < b.End && b.Start < a.End {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulateChunkStageOrder(t *testing.T) {
	// Each chunk's stage s cannot start before its stage s−1 ends.
	w := DistributedDPWorkflow()
	sched, err := Simulate(w, []float64{2, 3, 1, 3, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	end := map[[2]int]float64{}
	for _, iv := range sched.Intervals {
		end[[2]int{iv.Stage, iv.Chunk}] = iv.End
	}
	for _, iv := range sched.Intervals {
		if iv.Stage == 0 {
			continue
		}
		if iv.Start < end[[2]int{iv.Stage - 1, iv.Chunk}] {
			t.Fatalf("chunk %d stage %d starts before previous stage ends", iv.Chunk, iv.Stage)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	w := DistributedDPWorkflow()
	if _, err := Simulate(w, []float64{1, 1}, 2); err == nil {
		t.Error("tau length mismatch should error")
	}
	if _, err := Simulate(w, []float64{1, 1, 1, 1, 1}, 0); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := Simulate(w, []float64{1, 1, -1, 1, 1}, 2); err == nil {
		t.Error("negative tau should error")
	}
}

// pipelineModel builds a model where stage work is dominated by β₁·d/m and
// the three resources carry comparable load — the regime of Figure 2, where
// aggregation (client crypto + transfers + server unmasking) is >90% of the
// round and pipelining overlaps the idle resources. The speedup ceiling is
// total-load / busiest-resource-load ≈ 2.8 here, bracketing the paper's
// observed 2.4×.
func pipelineModel() PerfModel {
	return PerfModel{Stages: []Betas{
		{8e-6, 0.01, 0.2},  // client encode+mask (c-comp)
		{7e-6, 0.02, 0.5},  // upload (comm)
		{11e-6, 0.01, 0.1}, // server unmask+aggregate (s-comp)
		{7e-6, 0.02, 0.5},  // dispatch (comm)
		{6e-6, 0.01, 0.1},  // decode (c-comp)
	}}
}

func TestOptimalChunksSpeedsUp(t *testing.T) {
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	const d = 11e6 // ResNet-18 scale
	speedup, m, err := Speedup(w, pm, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 {
		t.Errorf("optimal m = %d, expected pipelining to help", m)
	}
	if speedup < 1.5 {
		t.Errorf("speedup %v, want ≥ 1.5 in the comm-dominated regime", speedup)
	}
	// The paper's observed ceiling is ~2.5×; with two comm stages of equal
	// weight the structural bound is ~3×. Sanity-check we are in range.
	if speedup > 3.5 {
		t.Errorf("speedup %v implausibly high", speedup)
	}
}

func TestOptimalChunksInteriorOptimum(t *testing.T) {
	// With a strong intervention term the optimum must be interior
	// (1 < m < max) and better than both extremes.
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	for s := range pm.Stages {
		pm.Stages[s][1] = 0.5 // heavy per-chunk intervention
	}
	const d = 5e6
	m, best, err := OptimalChunks(w, pm, d, 20)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := Simulate(w, pm.StageTimes(d, 1), 1)
	s20, _ := Simulate(w, pm.StageTimes(d, 20), 20)
	if best > s1.Makespan || best > s20.Makespan {
		t.Errorf("optimal %v worse than an extreme (m=1: %v, m=20: %v)", best, s1.Makespan, s20.Makespan)
	}
	if m <= 1 || m >= 20 {
		t.Errorf("expected interior optimum, got m=%d", m)
	}
}

func TestLargerModelsBenefitMore(t *testing.T) {
	// §6.4 "Dordis Gains More Speedup with Larger Models".
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	sSmall, _, err := Speedup(w, pm, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	sLarge, _, err := Speedup(w, pm, 20e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sLarge <= sSmall {
		t.Errorf("20M model speedup %v should exceed 1M model speedup %v", sLarge, sSmall)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan ≥ total load of the busiest resource (any valid schedule).
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	for _, m := range []int{1, 2, 5, 13} {
		tau := pm.StageTimes(2e6, m)
		sched, err := Simulate(w, tau, m)
		if err != nil {
			t.Fatal(err)
		}
		load := map[Resource]float64{}
		for s := range w {
			load[w[s].Resource] += tau[s] * float64(m)
		}
		for r, l := range load {
			if sched.Makespan < l-1e-9 {
				t.Errorf("m=%d: makespan %v below %v load %v", m, sched.Makespan, r, l)
			}
		}
	}
}

func TestExecutorRunsAllChunkStages(t *testing.T) {
	w := DistributedDPWorkflow()
	const m = 7
	var mu sync.Mutex
	seen := map[[2]int]int{}
	fns := make([]StageFunc, len(w))
	for s := range w {
		s := s
		fns[s] = func(chunk int) error {
			mu.Lock()
			seen[[2]int{s, chunk}]++
			mu.Unlock()
			return nil
		}
	}
	ex, err := NewExecutor(w, fns)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(m); err != nil {
		t.Fatal(err)
	}
	for s := range w {
		for c := 0; c < m; c++ {
			if seen[[2]int{s, c}] != 1 {
				t.Fatalf("stage %d chunk %d executed %d times", s, c, seen[[2]int{s, c}])
			}
		}
	}
}

func TestExecutorResourceExclusivity(t *testing.T) {
	w := DistributedDPWorkflow()
	var occupancy [int(numResources)]int32
	var violated atomic.Bool
	fns := make([]StageFunc, len(w))
	for s := range w {
		res := w[s].Resource
		fns[s] = func(chunk int) error {
			if atomic.AddInt32(&occupancy[res], 1) > 1 {
				violated.Store(true)
			}
			// Busy-wait a moment to give overlap a chance to manifest.
			for i := 0; i < 1000; i++ {
				_ = i
			}
			atomic.AddInt32(&occupancy[res], -1)
			return nil
		}
	}
	ex, err := NewExecutor(w, fns)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(8); err != nil {
		t.Fatal(err)
	}
	if violated.Load() {
		t.Fatal("two chunks occupied the same resource simultaneously")
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	w := DistributedDPWorkflow()
	boom := errors.New("boom")
	fns := make([]StageFunc, len(w))
	for s := range w {
		s := s
		fns[s] = func(chunk int) error {
			if s == 2 && chunk == 1 {
				return boom
			}
			return nil
		}
	}
	ex, err := NewExecutor(w, fns)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(4); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestExecutorValidation(t *testing.T) {
	w := DistributedDPWorkflow()
	if _, err := NewExecutor(w, make([]StageFunc, 2)); err == nil {
		t.Error("func count mismatch should error")
	}
	fns := make([]StageFunc, len(w))
	if _, err := NewExecutor(w, fns); err == nil {
		t.Error("nil funcs should error")
	}
	for s := range fns {
		fns[s] = func(int) error { return nil }
	}
	ex, _ := NewExecutor(w, fns)
	if err := ex.Run(0); err == nil {
		t.Error("m=0 should error")
	}
}

func BenchmarkSimulateM20(b *testing.B) {
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	tau := pm.StageTimes(11e6, 20)
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, tau, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalChunks(b *testing.B) {
	w := DistributedDPWorkflow()
	pm := pipelineModel()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalChunks(w, pm, 11e6, 20); err != nil {
			b.Fatal(err)
		}
	}
}
