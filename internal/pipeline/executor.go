package pipeline

import (
	"fmt"
	"sync"
)

// StageFunc executes one stage's work for one chunk. chunk is the chunk
// index in [0, m).
type StageFunc func(chunk int) error

// Executor runs real chunk-aggregation work with pipeline parallelism: m
// chunk workers traverse the workflow's stages in order while each
// resource admits one chunk-stage at a time — the runtime counterpart of
// the Appendix C schedule. It is what Dordis's server uses to overlap
// encode/upload/aggregate/dispatch/decode work across chunks (§4.1).
type Executor struct {
	workflow Workflow
	fns      []StageFunc
}

// NewExecutor pairs a workflow with its per-stage implementations.
func NewExecutor(w Workflow, fns []StageFunc) (*Executor, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(fns) != len(w) {
		return nil, fmt.Errorf("pipeline: %d stage funcs for %d stages", len(fns), len(w))
	}
	for s, fn := range fns {
		if fn == nil {
			return nil, fmt.Errorf("pipeline: nil func for stage %d (%s)", s, w[s].Name)
		}
	}
	return &Executor{workflow: w, fns: fns}, nil
}

// Ticket is a position in a Gate's FIFO admission order.
type Ticket uint64

// Gate serializes access to one resource and preserves FIFO admission
// order by ticket number. It is the schedule's resource-exclusivity
// primitive (Appendix C): the pipeline executor uses one Gate per
// resource, and the round engine reuses the same semantics to order the
// aggregate-apply step behind concurrent decodes.
type Gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    uint64 // next ticket to issue
	serving uint64 // ticket currently allowed to run
}

// NewGate returns an open gate serving ticket 0 first.
func NewGate() *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Reserve takes the next ticket without waiting. Call it at admission
// time (from the admitting goroutine) so concurrent workers are later
// served in admission order, not completion order.
func (g *Gate) Reserve() Ticket {
	g.mu.Lock()
	t := Ticket(g.next)
	g.next++
	g.mu.Unlock()
	return t
}

// Wait blocks until the ticket is served. Every reserved ticket must be
// waited on and released exactly once, or the gate stalls.
func (g *Gate) Wait(t Ticket) {
	g.mu.Lock()
	for Ticket(g.serving) != t {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Acquire reserves a ticket and blocks until it is served.
func (g *Gate) Acquire() {
	g.Wait(g.Reserve())
}

// Release admits the next ticket.
func (g *Gate) Release() {
	g.mu.Lock()
	g.serving++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Run executes all m chunks through all stages. The first stage error
// aborts the run (remaining chunk workers finish their current stage and
// stop). Chunks enter each resource in chunk order for the first stage;
// downstream admission order emerges from completion order, as in a real
// pipeline.
func (e *Executor) Run(m int) error {
	if m < 1 {
		return fmt.Errorf("pipeline: m must be ≥ 1, got %d", m)
	}
	gates := make([]*Gate, numResources)
	for i := range gates {
		gates[i] = NewGate()
	}
	// doneCh[s][c] closes when stage s of chunk c completes; chunk c's
	// worker waits for its predecessor chunk at the same stage before
	// acquiring the resource, which keeps per-stage chunk order (Appendix
	// C constraint 5, first case) and prevents out-of-order admission.
	done := make([][]chan struct{}, len(e.workflow))
	for s := range done {
		done[s] = make([]chan struct{}, m)
		for c := range done[s] {
			done[s][c] = make(chan struct{})
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, m)
	abort := make(chan struct{})
	var abortOnce sync.Once

	for c := 0; c < m; c++ {
		wg.Add(1)
		go func(chunk int) {
			defer wg.Done()
			for s := range e.workflow {
				// Wait for the same stage of the previous chunk.
				if chunk > 0 {
					select {
					case <-done[s][chunk-1]:
					case <-abort:
						return
					}
				}
				g := gates[e.workflow[s].Resource]
				g.Acquire()
				err := e.fns[s](chunk)
				g.Release()
				close(done[s][chunk])
				if err != nil {
					errCh <- fmt.Errorf("pipeline: stage %s chunk %d: %w", e.workflow[s].Name, chunk, err)
					abortOnce.Do(func() { close(abort) })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
