package pipeline

import (
	"fmt"
	"math"
)

// Interval is the scheduled execution window of one (stage, chunk)
// sub-task in the simulated timeline.
type Interval struct {
	Stage, Chunk int
	Start, End   float64
}

// Schedule is the full simulated timeline for one round.
type Schedule struct {
	M         int
	Intervals []Interval // ordered by (stage, chunk)
	Makespan  float64
}

// Simulate computes the pipeline schedule of m equal chunks through the
// workflow with per-stage sub-task times tau, under the two Appendix C
// constraints:
//
//	(4) each chunk traverses stages in order:        b_{s,c} ≥ f_{s−1,c}
//	(5) one chunk per resource at a time, with same-resource stages
//	    processed in order:  b_{s,c} ≥ f_{s,c−1}, and b_{s,0} ≥ f_{q,m−1}
//	    where q is the previous stage on the same resource.
//
// The returned makespan is f_{a,m}, the completion of the last stage for
// the last chunk.
func Simulate(w Workflow, tau []float64, m int) (Schedule, error) {
	if err := w.Validate(); err != nil {
		return Schedule{}, err
	}
	if len(tau) != len(w) {
		return Schedule{}, fmt.Errorf("pipeline: %d stage times for %d stages", len(tau), len(w))
	}
	if m < 1 {
		return Schedule{}, fmt.Errorf("pipeline: m must be ≥ 1, got %d", m)
	}
	for s, t := range tau {
		if t < 0 || math.IsNaN(t) {
			return Schedule{}, fmt.Errorf("pipeline: stage %d has invalid time %v", s, t)
		}
	}
	prev := w.prevSameResource()
	a := len(w)
	f := make([][]float64, a)
	for s := range f {
		f[s] = make([]float64, m)
	}
	sched := Schedule{M: m, Intervals: make([]Interval, 0, a*m)}
	for s := 0; s < a; s++ {
		for c := 0; c < m; c++ {
			start := 0.0
			if s > 0 && f[s-1][c] > start {
				start = f[s-1][c]
			}
			if c > 0 {
				if f[s][c-1] > start {
					start = f[s][c-1]
				}
			} else if q := prev[s]; q >= 0 && f[q][m-1] > start {
				start = f[q][m-1]
			}
			f[s][c] = start + tau[s]
			sched.Intervals = append(sched.Intervals, Interval{Stage: s, Chunk: c, Start: start, End: f[s][c]})
		}
	}
	sched.Makespan = f[a-1][m-1]
	return sched, nil
}

// PlainTime returns the non-pipelined round time: one chunk (m = 1)
// traversing all stages sequentially.
func PlainTime(w Workflow, pm PerfModel, d float64) (float64, error) {
	sched, err := Simulate(w, pm.StageTimes(d, 1), 1)
	if err != nil {
		return 0, err
	}
	return sched.Makespan, nil
}

// DefaultMaxChunks bounds the optimal-m enumeration; Appendix C notes
// m ∈ [20] suffices in practice.
const DefaultMaxChunks = 20

// OptimalChunks solves the Appendix C optimization: the m ∈ [1, maxM]
// minimizing the simulated makespan under the profiled performance model,
// for an update of size d. maxM ≤ 0 selects DefaultMaxChunks.
func OptimalChunks(w Workflow, pm PerfModel, d float64, maxM int) (bestM int, bestTime float64, err error) {
	if err := pm.Validate(w); err != nil {
		return 0, 0, err
	}
	if maxM <= 0 {
		maxM = DefaultMaxChunks
	}
	bestTime = math.Inf(1)
	for m := 1; m <= maxM; m++ {
		sched, err := Simulate(w, pm.StageTimes(d, m), m)
		if err != nil {
			return 0, 0, err
		}
		if sched.Makespan < bestTime {
			bestTime = sched.Makespan
			bestM = m
		}
	}
	return bestM, bestTime, nil
}

// Speedup returns plain-time / pipelined-time at the optimal m.
func Speedup(w Workflow, pm PerfModel, d float64, maxM int) (float64, int, error) {
	plain, err := PlainTime(w, pm, d)
	if err != nil {
		return 0, 0, err
	}
	m, piped, err := OptimalChunks(w, pm, d, maxM)
	if err != nil {
		return 0, 0, err
	}
	if piped <= 0 {
		return 1, m, nil
	}
	return plain / piped, m, nil
}
