package pipeline

import (
	"math"
	"sync"
	"testing"
)

func feedModel(t *testing.T, p *OnlineProfiler, pm PerfModel, ds []float64, ms []int) {
	t.Helper()
	for s := range pm.Stages {
		for _, d := range ds {
			for _, m := range ms {
				if err := p.Observe(s, d, m, pm.StageTime(s, d, m)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestOnlineProfilerRecoversModel(t *testing.T) {
	w := DistributedDPWorkflow()
	truth := pipelineModel()
	p, err := NewOnlineProfiler(w, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ready() {
		t.Fatal("empty profiler should not be ready")
	}
	feedModel(t, p, truth, []float64{1e6, 5e6, 11e6}, []int{1, 2, 4, 8})
	if !p.Ready() {
		t.Fatal("profiler with 12 samples per stage should be ready")
	}
	fitted, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for s := range truth.Stages {
		for i := 0; i < 3; i++ {
			want := truth.Stages[s][i]
			got := fitted.Stages[s][i]
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("stage %d β%d: fitted %v, want %v", s, i+1, got, want)
			}
		}
	}
}

func TestOnlineProfilerWindowEviction(t *testing.T) {
	w := DistributedDPWorkflow()
	p, err := NewOnlineProfiler(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Observe(0, float64(1000+i), 1+i%3, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.SampleCount(0); got != 4 {
		t.Fatalf("window should cap at 4, got %d", got)
	}
}

func TestOnlineProfilerTracksDrift(t *testing.T) {
	// The environment slows down (β₁ doubles); with a small window the
	// refit reflects the new regime, not the stale one.
	w := DistributedDPWorkflow()
	old := pipelineModel()
	slow := pipelineModel()
	for s := range slow.Stages {
		slow.Stages[s][0] *= 2
	}
	p, err := NewOnlineProfiler(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	feedModel(t, p, old, []float64{1e6, 5e6}, []int{1, 2, 4})
	feedModel(t, p, slow, []float64{1e6, 5e6, 11e6}, []int{1, 2, 4, 8})
	fitted, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for s := range slow.Stages {
		want := slow.Stages[s][0]
		if math.Abs(fitted.Stages[s][0]-want) > 0.05*want {
			t.Errorf("stage %d β₁ %v did not track drift to %v", s, fitted.Stages[s][0], want)
		}
	}
}

func TestOnlineProfilerValidation(t *testing.T) {
	w := DistributedDPWorkflow()
	p, _ := NewOnlineProfiler(w, 8)
	if err := p.Observe(99, 1, 1, 1); err == nil {
		t.Error("out-of-range stage should error")
	}
	if err := p.Observe(0, 1, 0, 1); err == nil {
		t.Error("m=0 should error")
	}
	if err := p.Observe(0, 1, 1, -1); err == nil {
		t.Error("negative τ should error")
	}
	if _, err := NewOnlineProfiler(Workflow{}, 8); err == nil {
		t.Error("empty workflow should error")
	}
}

func TestOnlineProfilerConcurrentObserve(t *testing.T) {
	w := DistributedDPWorkflow()
	p, _ := NewOnlineProfiler(w, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = p.Observe(g%len(w), float64(1000+i), 1+i%5, float64(i))
			}
		}(g)
	}
	wg.Wait()
	for s := range w {
		if p.SampleCount(s) == 0 {
			t.Fatalf("stage %d lost all samples", s)
		}
	}
}

func TestAutoTunerLifecycle(t *testing.T) {
	w := DistributedDPWorkflow()
	tuner, err := NewAutoTuner(w, 64, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	const d = 11e6
	// Cold: default.
	if m := tuner.Recommend(d); m != 1 {
		t.Fatalf("cold tuner should return default, got %d", m)
	}
	// Warm it with the true model; recommendation should match the
	// offline solver.
	truth := pipelineModel()
	feedModel(t, tuner.Profiler(), truth, []float64{1e6, 5e6, 11e6}, []int{1, 2, 4, 8})
	wantM, _, err := OptimalChunks(w, truth, d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m := tuner.Recommend(d); m != wantM {
		t.Fatalf("warm tuner recommends %d, offline solver %d", m, wantM)
	}
}

func TestAutoTunerValidation(t *testing.T) {
	if _, err := NewAutoTuner(DistributedDPWorkflow(), 8, 0, 20); err == nil {
		t.Error("defaultM=0 should error")
	}
}
