package pipeline

import (
	"fmt"
	"math"
)

// Betas are the three profiled coefficients of Eq. 3 for one stage:
// τ_s = β₁·d/m + β₂·m + β₃ — partition-size cost, inter-task intervention
// cost, and constant per-sub-task cost.
type Betas [3]float64

// PerfModel predicts per-stage sub-task latency as a function of the
// update size d and chunk count m (Eq. 3).
type PerfModel struct {
	Stages []Betas // one per workflow stage
}

// Validate checks the model covers a workflow.
func (pm PerfModel) Validate(w Workflow) error {
	if len(pm.Stages) != len(w) {
		return fmt.Errorf("pipeline: model has %d stages, workflow %d", len(pm.Stages), len(w))
	}
	for s, b := range pm.Stages {
		for i, v := range b {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("pipeline: stage %d β%d = %v invalid", s, i+1, v)
			}
		}
	}
	return nil
}

// StageTime returns τ_s for one sub-task at the given d and m.
func (pm PerfModel) StageTime(stage int, d float64, m int) float64 {
	b := pm.Stages[stage]
	return b[0]*d/float64(m) + b[1]*float64(m) + b[2]
}

// StageTimes returns τ for every stage at (d, m).
func (pm PerfModel) StageTimes(d float64, m int) []float64 {
	out := make([]float64, len(pm.Stages))
	for s := range pm.Stages {
		out[s] = pm.StageTime(s, d, m)
	}
	return out
}

// Sample is one profiling observation for a stage: executing a sub-task of
// a d-sized update split into m chunks took Tau time units.
type Sample struct {
	D   float64
	M   int
	Tau float64
}

// FitStage estimates a stage's β coefficients from profiling samples by
// ordinary least squares on the design (d/m, m, 1). At least three
// non-degenerate samples are required; coefficients are clamped at zero
// (negative β has no physical meaning and destabilizes the optimizer).
// This is the "linear regression with offline micro-benchmarking" of §4.2.
func FitStage(samples []Sample) (Betas, error) {
	if len(samples) < 3 {
		return Betas{}, fmt.Errorf("pipeline: need ≥3 samples, got %d", len(samples))
	}
	// Normal equations A^T A x = A^T y for A rows (d/m, m, 1).
	var ata [3][3]float64
	var aty [3]float64
	for _, s := range samples {
		if s.M < 1 {
			return Betas{}, fmt.Errorf("pipeline: sample with m=%d", s.M)
		}
		row := [3]float64{s.D / float64(s.M), float64(s.M), 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * s.Tau
		}
	}
	x, err := solve3(ata, aty)
	if err != nil {
		return Betas{}, err
	}
	var b Betas
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
		b[i] = x[i]
	}
	return b, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, y [3]float64) ([3]float64, error) {
	// Augment.
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = y[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("pipeline: singular profiling system (degenerate samples)")
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, nil
}

// FitModel fits every stage of a workflow from per-stage sample sets.
func FitModel(w Workflow, perStage [][]Sample) (PerfModel, error) {
	if len(perStage) != len(w) {
		return PerfModel{}, fmt.Errorf("pipeline: %d sample sets for %d stages", len(perStage), len(w))
	}
	pm := PerfModel{Stages: make([]Betas, len(w))}
	for s := range w {
		b, err := FitStage(perStage[s])
		if err != nil {
			return PerfModel{}, fmt.Errorf("stage %d (%s): %w", s, w[s].Name, err)
		}
		pm.Stages[s] = b
	}
	return pm, nil
}
