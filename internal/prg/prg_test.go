package prg

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestDeterminism(t *testing.T) {
	seed := NewSeed([]byte("hello"))
	a := NewStream(seed)
	b := NewStream(seed)
	bufA := make([]byte, 10000)
	bufB := make([]byte, 10000)
	a.Read(bufA)
	b.Read(bufB)
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("same seed must produce identical streams")
	}
}

func TestDeterminismAcrossReadSizes(t *testing.T) {
	seed := NewSeed([]byte("chunked"))
	a := NewStream(seed)
	b := NewStream(seed)
	bufA := make([]byte, 3000)
	a.Read(bufA)
	bufB := make([]byte, 0, 3000)
	tmp := make([]byte, 7)
	for len(bufB) < 3000 {
		n := 7
		if rem := 3000 - len(bufB); rem < n {
			n = rem
		}
		b.Read(tmp[:n])
		bufB = append(bufB, tmp[:n]...)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("stream must be invariant to read partitioning")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewStream(NewSeed([]byte("a")))
	b := NewStream(NewSeed([]byte("b")))
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestNewSeedConcatenationMatters(t *testing.T) {
	// NewSeed hashes the concatenation; different part splits of the same
	// bytes are identical, but different bytes must differ.
	s1 := NewSeed([]byte("ab"), []byte("c"))
	s2 := NewSeed([]byte("a"), []byte("bc"))
	if s1 != s2 {
		t.Error("NewSeed should hash the concatenation of parts")
	}
	s3 := NewSeed([]byte("abd"))
	if s1 == s3 {
		t.Error("different content should give different seeds")
	}
}

func TestFieldElementRoundTripDomain(t *testing.T) {
	f := func(v uint64) bool {
		e := field.New(v)
		s := FromFieldElement(e)
		// Determinism of the mapping.
		return s == FromFieldElement(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := NewStream(NewSeed([]byte("bounds")))
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	NewStream(NewSeed([]byte("z"))).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(NewSeed([]byte("floats")))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse uniformity check: 16 buckets over Uint64n(16).
	s := NewStream(NewSeed([]byte("chi2")))
	const n = 160000
	var counts [16]int
	for i := 0; i < n; i++ {
		counts[s.Uint64n(16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df=15; 99.9th percentile ≈ 37.7. Generous bound.
	if chi2 > 45 {
		t.Errorf("chi-square %v too large; distribution looks non-uniform", chi2)
	}
}

func TestForkIndependence(t *testing.T) {
	seed := NewSeed([]byte("fork"))
	s1 := NewStream(seed)
	c1 := s1.Fork("alpha")
	c2 := s1.Fork("alpha") // second fork consumes later stream state → differs
	b1 := make([]byte, 64)
	b2 := make([]byte, 64)
	c1.Read(b1)
	c2.Read(b2)
	if bytes.Equal(b1, b2) {
		t.Error("sequential forks should be independent")
	}
	// Determinism: replaying the parent reproduces the same children.
	s2 := NewStream(seed)
	d1 := s2.Fork("alpha")
	e1 := make([]byte, 64)
	d1.Read(e1)
	c1b := make([]byte, 64)
	NewStream(seed).Fork("alpha").Read(c1b)
	if !bytes.Equal(e1, c1b) {
		t.Error("fork must be deterministic given parent state")
	}
}

func TestFieldElementStream(t *testing.T) {
	s := NewStream(NewSeed([]byte("fe")))
	for i := 0; i < 1000; i++ {
		if e := s.FieldElement(); e.Uint64() >= field.Modulus {
			t.Fatalf("field element out of range: %v", e)
		}
	}
}

func BenchmarkRead1MB(b *testing.B) {
	s := NewStream(NewSeed([]byte("bench")))
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(buf)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewStream(NewSeed([]byte("bench64")))
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
