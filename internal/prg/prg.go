// Package prg provides a deterministic, seekable pseudorandom generator
// built on AES-128 in counter mode.
//
// In the Dordis protocol (paper Fig. 5) PRGs are used in three roles, all of
// which require that two parties holding the same seed expand bit-identical
// streams:
//
//   - pairwise masks p_{u,v} = PRG(s_{u,v}) in SecAgg,
//   - self masks p_u = PRG(b_u),
//   - XNoise noise components n_{u,k} sampled from PRG(g_{u,k}).
//
// A Stream implements io.Reader and exposes typed draws (Uint64, Float64,
// bounded integers) used by package rng's distribution samplers.
package prg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"repro/internal/endian"
	"repro/internal/field"
)

// SeedSize is the canonical seed length in bytes. Seeds of other lengths are
// accepted and hashed down to SeedSize.
const SeedSize = 32

// Seed is PRG key material. The protocol treats some seeds as field elements
// (so they can be Shamir-shared); FromFieldElement/ToFieldElement convert.
type Seed [SeedSize]byte

// NewSeed derives a Seed from arbitrary bytes via SHA-256. It is used both
// to canonicalize raw entropy and to derive sub-seeds with domain
// separation: NewSeed(parent[:], label...).
func NewSeed(parts ...[]byte) Seed {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var s Seed
	h.Sum(s[:0])
	return s
}

// FromFieldElement derives a Seed from a GF(2^61-1) element. XNoise stores
// noise seeds as field elements so they can be secret-shared; expansion to
// key material goes through this deterministic map.
func FromFieldElement(e field.Element) Seed {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.Uint64())
	return NewSeed([]byte("dordis/prg/from-field/v1"), b[:])
}

// ToFieldElement compresses a Seed into a field element, used when a
// uniformly random field value is needed from seed material.
func ToFieldElement(s Seed) field.Element {
	var b [8]byte
	copy(b[:], s[:8])
	return field.RandomElement(b)
}

// Stream is a deterministic pseudorandom byte/word stream: AES-128-CTR over
// a zero plaintext, keyed by the first 16 bytes of the seed with the next
// 16 bytes as the initial counter block. It is NOT safe for concurrent use.
type Stream struct {
	ctr cipher.Stream
	buf [512]byte
	pos int // next unread byte in buf; len(buf) means empty
}

// NewStream constructs a Stream from a seed.
func NewStream(seed Seed) *Stream {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		// aes.NewCipher only fails on invalid key length; 16 is valid.
		panic(fmt.Sprintf("prg: %v", err))
	}
	s := &Stream{ctr: cipher.NewCTR(block, seed[16:32])}
	s.pos = len(s.buf)
	return s
}

// NewStreamFromElement is shorthand for NewStream(FromFieldElement(e)).
func NewStreamFromElement(e field.Element) *Stream {
	return NewStream(FromFieldElement(e))
}

// bulkChunk is the quantum of the bulk keystream paths: large enough to
// amortize the CTR call overhead, small enough that a chunk plus its zero
// source stay cache-resident.
const bulkChunk = 32768

// zeroChunk is a read-only all-zero XORKeyStream source: XORing the
// keystream with zeros writes the raw keystream into dst in a single pass,
// replacing the seed's zero-then-XOR double pass over the refill buffer.
var zeroChunk [bulkChunk]byte

func (s *Stream) refill() {
	s.ctr.XORKeyStream(s.buf[:], zeroChunk[:len(s.buf)])
	s.pos = 0
}

// Read fills p with pseudorandom bytes. It never fails. It serves entirely
// from the lookahead buffer: typed 8-byte draws stay allocation-free (p is
// never passed to the cipher, so callers' stack buffers do not escape).
// Bulk consumers should use Fill, which streams into large buffers
// directly.
func (s *Stream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.pos == len(s.buf) {
			s.refill()
		}
		c := copy(p, s.buf[s.pos:])
		s.pos += c
		p = p[c:]
	}
	return n, nil
}

// Fill overwrites dst with the next len(dst) stream bytes, keystreaming
// directly into the caller's buffer. The logical byte stream is identical
// to a sequence of Read calls consuming the same total — the internal
// buffer is pure lookahead — so client and server may freely mix scalar and
// bulk expansion and still coincide bit-for-bit.
func (s *Stream) Fill(dst []byte) {
	// Serve buffered lookahead first so the logical position is contiguous.
	if s.pos < len(s.buf) {
		c := copy(dst, s.buf[s.pos:])
		s.pos += c
		dst = dst[c:]
	}
	// Stream the rest straight from the CTR; small residues go through the
	// buffer so typed 8-byte draws keep their amortization.
	for len(dst) >= len(s.buf) {
		n := len(dst)
		if n > bulkChunk {
			n = bulkChunk
		}
		s.ctr.XORKeyStream(dst[:n], zeroChunk[:n])
		dst = dst[n:]
	}
	if len(dst) > 0 {
		s.refill()
		s.pos = copy(dst, s.buf[:])
	}
}

// FillUint64 overwrites dst with the next len(dst) little-endian uint64
// draws — the bulk form of a Uint64() loop, consuming exactly 8·len(dst)
// stream bytes. The keystream lands in dst's backing memory; on
// little-endian hosts that already is the protocol value sequence, on
// big-endian hosts each word is byte-swapped in place, so all platforms
// observe the identical draw sequence.
func (s *Stream) FillUint64(dst []uint64) {
	if len(dst) == 0 {
		return
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), len(dst)*8)
	s.Fill(b)
	if !endian.HostLittle {
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
}

// FillUint64Masked is FillUint64 with each draw ANDed with mask — the bulk
// form of the Uint64()&mask loop at the heart of SecAgg mask expansion.
func (s *Stream) FillUint64Masked(dst []uint64, mask uint64) {
	s.FillUint64(dst)
	for i := range dst {
		dst[i] &= mask
	}
}

var _ io.Reader = (*Stream)(nil)

// Uint64 returns the next 8 stream bytes as a little-endian uint64.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Uint32 returns the next 4 stream bytes as a little-endian uint32.
func (s *Stream) Uint32() uint32 {
	var b [4]byte
	s.Read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Uint64n returns a uniform value in [0, n) via unbiased rejection
// sampling (Lemire-style threshold rejection on the modulus).
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prg: Uint64n(0)")
	}
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	// Rejection threshold: largest multiple of n that fits in 2^64.
	limit := -n % n // == 2^64 mod n
	for {
		v := s.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Int63 returns a uniform value in [0, 2^63).
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// FieldElement returns a (near-)uniform GF(2^61-1) element.
func (s *Stream) FieldElement() field.Element {
	var b [8]byte
	s.Read(b[:])
	return field.RandomElement(b)
}

// Fork derives an independent child stream with domain separation, so a
// single per-round seed can drive many independent sub-streams (one per
// noise component, per chunk, ...) without overlap.
func (s *Stream) Fork(label string) *Stream {
	var material [32]byte
	s.Read(material[:])
	return NewStream(NewSeed([]byte("dordis/prg/fork/"+label), material[:]))
}
