// Package prg provides a deterministic, seekable pseudorandom generator
// built on AES-128 in counter mode.
//
// In the Dordis protocol (paper Fig. 5) PRGs are used in three roles, all of
// which require that two parties holding the same seed expand bit-identical
// streams:
//
//   - pairwise masks p_{u,v} = PRG(s_{u,v}) in SecAgg,
//   - self masks p_u = PRG(b_u),
//   - XNoise noise components n_{u,k} sampled from PRG(g_{u,k}).
//
// A Stream implements io.Reader and exposes typed draws (Uint64, Float64,
// bounded integers) used by package rng's distribution samplers.
package prg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"repro/internal/endian"
	"repro/internal/field"
)

// SeedSize is the canonical seed length in bytes. Seeds of other lengths are
// accepted and hashed down to SeedSize.
const SeedSize = 32

// Seed is PRG key material. The protocol treats some seeds as field elements
// (so they can be Shamir-shared); FromFieldElement/ToFieldElement convert.
type Seed [SeedSize]byte

// NewSeed derives a Seed from arbitrary bytes via SHA-256. It is used both
// to canonicalize raw entropy and to derive sub-seeds with domain
// separation: NewSeed(parent[:], label...).
func NewSeed(parts ...[]byte) Seed {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var s Seed
	h.Sum(s[:0])
	return s
}

// FromFieldElement derives a Seed from a GF(2^61-1) element. XNoise stores
// noise seeds as field elements so they can be secret-shared; expansion to
// key material goes through this deterministic map.
func FromFieldElement(e field.Element) Seed {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.Uint64())
	return NewSeed([]byte("dordis/prg/from-field/v1"), b[:])
}

// ToFieldElement compresses a Seed into a field element, used when a
// uniformly random field value is needed from seed material.
func ToFieldElement(s Seed) field.Element {
	var b [8]byte
	copy(b[:], s[:8])
	return field.RandomElement(b)
}

// BlockSize is the AES-CTR keystream block granularity in bytes. SeekBlock
// repositions in units of this size; Seek/At accept arbitrary byte offsets.
const BlockSize = aes.BlockSize

// Stream is a deterministic pseudorandom byte/word stream: AES-128-CTR over
// a zero plaintext, keyed by the first 16 bytes of the seed with the next
// 16 bytes as the initial counter block. It is NOT safe for concurrent use,
// but At derives independent cursors over the same keystream that may be
// driven from different goroutines.
type Stream struct {
	ctr      cipher.Stream
	block    cipher.Block // AES block, kept for random-access reseeking
	iv       [16]byte     // initial counter block (keystream offset 0)
	produced uint64       // keystream bytes drawn from ctr so far
	buf      [512]byte
	pos      int // next unread byte in buf; len(buf) means empty
}

// NewStream constructs a Stream from a seed.
func NewStream(seed Seed) *Stream {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		// aes.NewCipher only fails on invalid key length; 16 is valid.
		panic(fmt.Sprintf("prg: %v", err))
	}
	s := &Stream{ctr: cipher.NewCTR(block, seed[16:32]), block: block}
	copy(s.iv[:], seed[16:32])
	s.pos = len(s.buf)
	return s
}

// NewStreamFromElement is shorthand for NewStream(FromFieldElement(e)).
func NewStreamFromElement(e field.Element) *Stream {
	return NewStream(FromFieldElement(e))
}

// bulkChunk is the quantum of the bulk keystream paths: large enough to
// amortize the CTR call overhead, small enough that a chunk plus its zero
// source stay cache-resident.
const bulkChunk = 32768

// zeroChunk is a read-only all-zero XORKeyStream source: XORing the
// keystream with zeros writes the raw keystream into dst in a single pass,
// replacing the seed's zero-then-XOR double pass over the refill buffer.
var zeroChunk [bulkChunk]byte

func (s *Stream) refill() {
	s.ctr.XORKeyStream(s.buf[:], zeroChunk[:len(s.buf)])
	s.produced += uint64(len(s.buf))
	s.pos = 0
}

// Read fills p with pseudorandom bytes. It never fails. It serves entirely
// from the lookahead buffer: typed 8-byte draws stay allocation-free (p is
// never passed to the cipher, so callers' stack buffers do not escape).
// Bulk consumers should use Fill, which streams into large buffers
// directly.
func (s *Stream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.pos == len(s.buf) {
			s.refill()
		}
		c := copy(p, s.buf[s.pos:])
		s.pos += c
		p = p[c:]
	}
	return n, nil
}

// Fill overwrites dst with the next len(dst) stream bytes, keystreaming
// directly into the caller's buffer. The logical byte stream is identical
// to a sequence of Read calls consuming the same total — the internal
// buffer is pure lookahead — so client and server may freely mix scalar and
// bulk expansion and still coincide bit-for-bit.
func (s *Stream) Fill(dst []byte) {
	// Serve buffered lookahead first so the logical position is contiguous.
	if s.pos < len(s.buf) {
		c := copy(dst, s.buf[s.pos:])
		s.pos += c
		dst = dst[c:]
	}
	// Stream the rest straight from the CTR; small residues go through the
	// buffer so typed 8-byte draws keep their amortization.
	for len(dst) >= len(s.buf) {
		n := len(dst)
		if n > bulkChunk {
			n = bulkChunk
		}
		s.ctr.XORKeyStream(dst[:n], zeroChunk[:n])
		s.produced += uint64(n)
		dst = dst[n:]
	}
	if len(dst) > 0 {
		s.refill()
		s.pos = copy(dst, s.buf[:])
	}
}

// FillUint64 overwrites dst with the next len(dst) little-endian uint64
// draws — the bulk form of a Uint64() loop, consuming exactly 8·len(dst)
// stream bytes. The keystream lands in dst's backing memory; on
// little-endian hosts that already is the protocol value sequence, on
// big-endian hosts each word is byte-swapped in place, so all platforms
// observe the identical draw sequence.
func (s *Stream) FillUint64(dst []uint64) {
	if len(dst) == 0 {
		return
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), len(dst)*8)
	s.Fill(b)
	if !endian.HostLittle {
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
}

// FillUint64Masked is FillUint64 with each draw ANDed with mask — the bulk
// form of the Uint64()&mask loop at the heart of SecAgg mask expansion.
func (s *Stream) FillUint64Masked(dst []uint64, mask uint64) {
	s.FillUint64(dst)
	for i := range dst {
		dst[i] &= mask
	}
}

var _ io.Reader = (*Stream)(nil)

// Uint64 returns the next 8 stream bytes as a little-endian uint64.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Uint32 returns the next 4 stream bytes as a little-endian uint32.
func (s *Stream) Uint32() uint32 {
	var b [4]byte
	s.Read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Uint64n returns a uniform value in [0, n) via unbiased rejection
// sampling (Lemire-style threshold rejection on the modulus).
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prg: Uint64n(0)")
	}
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	// Rejection threshold: largest multiple of n that fits in 2^64.
	limit := -n % n // == 2^64 mod n
	for {
		v := s.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Int63 returns a uniform value in [0, 2^63).
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// FieldElement returns a (near-)uniform GF(2^61-1) element.
func (s *Stream) FieldElement() field.Element {
	var b [8]byte
	s.Read(b[:])
	return field.RandomElement(b)
}

// Offset returns the logical byte position of the stream: the number of
// keystream bytes a caller has consumed through Read/Fill/typed draws.
// Buffered lookahead does not count — Offset is exactly the index of the
// next byte the stream will hand out.
func (s *Stream) Offset() uint64 {
	return s.produced - uint64(len(s.buf)-s.pos)
}

// Seek repositions the stream so the next byte served is keystream byte
// off. AES-CTR is random access: the counter block for byte off is
// iv + off/BlockSize (a 128-bit big-endian add, wrapping like CTR mode
// itself), and any intra-block remainder is discarded from the refill
// lookahead. Seeking is O(1) plus one buffer refill for unaligned offsets;
// the resulting byte sequence is identical to sequentially consuming the
// first off bytes — golden-tested at every offset class in prg_test.go.
func (s *Stream) Seek(off uint64) {
	blk := off / BlockSize
	var iv [16]byte
	ctrAdd(&iv, s.iv, blk)
	s.ctr = cipher.NewCTR(s.block, iv[:])
	s.produced = blk * BlockSize
	s.pos = len(s.buf) // drop any buffered lookahead
	if rem := int(off % BlockSize); rem > 0 {
		s.refill()
		s.pos = rem
	}
}

// SeekBlock repositions the stream to the start of keystream block blk,
// i.e. byte offset blk·BlockSize. See Seek.
func (s *Stream) SeekBlock(blk uint64) {
	s.Seek(blk * BlockSize)
}

// At returns a new independent cursor over the same keystream, positioned
// at byte offset off. The receiver is not advanced or disturbed, so
// distinct segments of one logical stream can be expanded concurrently
// from different goroutines — the basis of segmented mask expansion in
// packages ring and secagg.
func (s *Stream) At(off uint64) *Stream {
	c := &Stream{block: s.block, iv: s.iv}
	c.pos = len(c.buf)
	c.Seek(off)
	return c
}

// FillAt overwrites dst with len(dst) keystream bytes starting at absolute
// offset off, without moving the receiver's position. It is byte-identical
// to Seek(off)+Fill(dst) on a fresh cursor.
func (s *Stream) FillAt(dst []byte, off uint64) {
	s.At(off).Fill(dst)
}

// FillUint64At is FillUint64 reading 8·len(dst) keystream bytes from
// absolute offset off, without moving the receiver's position.
func (s *Stream) FillUint64At(dst []uint64, off uint64) {
	s.At(off).FillUint64(dst)
}

// ctrAdd computes dst = iv + n interpreting the 16-byte counter block as a
// big-endian 128-bit integer, wrapping modulo 2^128 — the same carry rule
// cipher.NewCTR applies when incrementing per block.
func ctrAdd(dst *[16]byte, iv [16]byte, n uint64) {
	hi := binary.BigEndian.Uint64(iv[:8])
	lo := binary.BigEndian.Uint64(iv[8:])
	sum := lo + n
	if sum < lo {
		hi++
	}
	binary.BigEndian.PutUint64(dst[:8], hi)
	binary.BigEndian.PutUint64(dst[8:], sum)
}

// Fork derives an independent child stream with domain separation, so a
// single per-round seed can drive many independent sub-streams (one per
// noise component, per chunk, ...) without overlap.
func (s *Stream) Fork(label string) *Stream {
	var material [32]byte
	s.Read(material[:])
	return NewStream(NewSeed([]byte("dordis/prg/fork/"+label), material[:]))
}
