package lightsecagg

import (
	"context"
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/transport"
)

func runWireRound(t *testing.T, cfg Config, inputs map[uint64][]field.Element,
	dropAt map[uint64]WireStage) ([]field.Element, error) {
	t.Helper()
	net := transport.NewMemoryNetwork(256)
	conns := make(map[uint64]transport.ClientConn, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		c, err := net.Connect(id)
		if err != nil {
			t.Fatal(err)
		}
		conns[id] = c
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var mu sync.Mutex
	clientErrs := make(map[uint64]error)
	for _, id := range cfg.ClientIDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcfg := WireClientConfig{
				Config: cfg, ID: id, Input: inputs[id],
				DropBefore: dropAt[id], Rand: rand.Reader,
			}
			_, err := RunWireClient(ctx, wcfg, conns[id])
			mu.Lock()
			clientErrs[id] = err
			mu.Unlock()
		}()
	}
	sum, err := RunWireServer(ctx,
		WireServerConfig{Config: cfg, StageDeadline: 800 * time.Millisecond}, net.Server())
	if err != nil {
		cancel() // unblock clients waiting on a round that died
	}
	wg.Wait()
	if err == nil {
		// On a successful round, every non-dropped client must finish
		// cleanly too.
		for id, cerr := range clientErrs {
			if cerr != nil && dropAt[id] == WireNoDrop {
				t.Errorf("client %d: %v", id, cerr)
			}
		}
	}
	return sum, err
}

func TestWireRoundNoDropout(t *testing.T) {
	cfg := testConfig(5, 1, 1, 24)
	inputs, wantSum := makeInputs(cfg)
	sum, err := runWireRound(t, cfg, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, sum, wantSum(nil))
}

func TestWireRoundDropBeforeMasked(t *testing.T) {
	cfg := testConfig(6, 1, 2, 16)
	inputs, wantSum := makeInputs(cfg)
	drops := map[uint64]WireStage{3: WireDropBeforeMasked, 5: WireDropBeforeMasked}
	sum, err := runWireRound(t, cfg, inputs, drops)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, sum, wantSum(map[uint64]bool{3: true, 5: true}))
}

func TestWireRoundDropDuringRecovery(t *testing.T) {
	cfg := testConfig(6, 1, 1, 16) // U = 5
	inputs, wantSum := makeInputs(cfg)
	// All six upload; one survivor then vanishes before the aggregate
	// share — five responders = U exactly.
	drops := map[uint64]WireStage{4: WireDropBeforeAggShare}
	sum, err := runWireRound(t, cfg, inputs, drops)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, sum, wantSum(nil))
}

func TestWireRoundAbortsBeyondTolerance(t *testing.T) {
	cfg := testConfig(5, 1, 1, 8) // U = 4
	inputs, _ := makeInputs(cfg)
	drops := map[uint64]WireStage{1: WireDropBeforeMasked, 2: WireDropBeforeMasked}
	if _, err := runWireRound(t, cfg, inputs, drops); err == nil {
		t.Fatal("expected abort: 2 dropouts exceed D = 1")
	}
}

// TestWireSharesSealedFromServer: the frames relayed during the share
// stage are AEAD ciphertexts — the server (or any observer of the star
// network) cannot read coded shares in transit. We verify by running a
// round through a snooping wrapper that records stage-2 payloads and then
// checking a known share value never appears in them.
func TestWireSharesSealedFromServer(t *testing.T) {
	cfg := testConfig(4, 1, 1, 8)
	inputs, _ := makeInputs(cfg)

	net := transport.NewMemoryNetwork(256)
	conns := make(map[uint64]transport.ClientConn, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		c, err := net.Connect(id)
		if err != nil {
			t.Fatal(err)
		}
		conns[id] = c
	}
	snoop := &recordingServerConn{ServerConn: net.Server()}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range cfg.ClientIDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := RunWireClient(ctx, WireClientConfig{
				Config: cfg, ID: id, Input: inputs[id], Rand: rand.Reader,
			}, conns[id])
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}()
	}
	if _, err := RunWireServer(ctx, WireServerConfig{Config: cfg, StageDeadline: 800 * time.Millisecond}, snoop); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	snoop.mu.Lock()
	defer snoop.mu.Unlock()
	if snoop.shareFrames == 0 {
		t.Fatal("snoop recorded no share frames — test wiring broken")
	}
	// Every ciphertext inside a recorded stage-2 payload must be
	// high-entropy: a plaintext share vector would contain long runs of
	// zero bytes (the codec's length-prefixed small elements); AEAD output
	// does not. The envelope framing itself (From/To/length headers) is
	// legitimately structured, so the check decodes it first.
	for _, p := range snoop.payloads {
		envs, err := decodeEnvelopes(p)
		if err != nil {
			t.Fatalf("stage-2 payload is not an envelope list: %v", err)
		}
		for _, env := range envs {
			zeros := 0
			for _, b := range env.Ciphertext {
				if b == 0 {
					zeros++
				}
			}
			if frac := float64(zeros) / float64(len(env.Ciphertext)); frac > 0.2 {
				t.Fatalf("share ciphertext %.0f%% zero bytes — looks like plaintext", 100*frac)
			}
		}
	}
}

type recordingServerConn struct {
	transport.ServerConn
	mu          sync.Mutex
	shareFrames int
	payloads    [][]byte
}

func (r *recordingServerConn) Recv(ctx context.Context) (transport.Frame, error) {
	f, err := r.ServerConn.Recv(ctx)
	if err == nil && f.Stage == wireShares {
		r.mu.Lock()
		r.shareFrames++
		r.payloads = append(r.payloads, append([]byte(nil), f.Payload...))
		r.mu.Unlock()
	}
	return f, err
}

func TestWireRoundOverTCP(t *testing.T) {
	cfg := testConfig(4, 1, 1, 12)
	inputs, wantSum := makeInputs(cfg)

	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conns := make(map[uint64]transport.ClientConn, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		c, err := transport.DialTCP(srv.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		conns[id] = c
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Clients()) < len(cfg.ClientIDs) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range cfg.ClientIDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := RunWireClient(ctx, WireClientConfig{
				Config: cfg, ID: id, Input: inputs[id], Rand: rand.Reader,
			}, conns[id])
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			// Every surviving client learns the same aggregate.
			want := wantSum(nil)
			for i := range want {
				if Center(got[i]) != want[i] {
					t.Errorf("client %d: coord %d = %d, want %d", id, i, Center(got[i]), want[i])
					return
				}
			}
		}()
	}
	sum, err := RunWireServer(ctx, WireServerConfig{Config: cfg, StageDeadline: 1500 * time.Millisecond}, srv)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	checkSum(t, sum, wantSum(nil))
}
