package lightsecagg

import "fmt"

// Cost is the analytic per-client communication model used by the
// protocol-comparison ablation. Units are bytes; constants follow the
// paper's Table 3 conventions (model weights 2.5 B under the 20-bit
// encoding; field elements on the wire are 8 B).
type Cost struct {
	OfflineShareBytes float64 // step 1: n coded shares of L elements each
	MaskedUploadBytes float64 // step 2: d weights
	RecoveryBytes     float64 // step 3: one aggregate share of L elements
}

// Total returns the full per-client upload for one round.
func (c Cost) Total() float64 {
	return c.OfflineShareBytes + c.MaskedUploadBytes + c.RecoveryBytes
}

// fieldElementBytes is the wire size of one GF(2^61−1) element.
const fieldElementBytes = 8.0

// ClientCost returns the per-client upload cost of one LightSecAgg round
// over a d-parameter model with weightBytes per parameter. The structural
// contrast with SecAgg+XNoise (Table 3) is that the share traffic scales
// with d/(U−T) — linear in the model — where XNoise ships constant-size
// seeds.
func ClientCost(cfg Config, weightBytes float64) (Cost, error) {
	if err := cfg.Validate(); err != nil {
		return Cost{}, err
	}
	if weightBytes <= 0 {
		return Cost{}, fmt.Errorf("lightsecagg: weightBytes must be positive, got %v", weightBytes)
	}
	n := float64(len(cfg.ClientIDs))
	l := float64(cfg.SubVectorLen())
	return Cost{
		OfflineShareBytes: n * l * fieldElementBytes,
		MaskedUploadBytes: float64(cfg.Dim) * weightBytes,
		RecoveryBytes:     l * fieldElementBytes,
	}, nil
}
