package lightsecagg

// Wire driver: one LightSecAgg round over a transport.Transport, built on
// the shared round engine exactly like core.RunWireServer. Coded mask
// shares relay through the untrusted server (the star topology of §3.3)
// inside pairwise AEAD envelopes keyed by X25519 agreement — otherwise
// the server could collect U of them and unmask every client.
//
// Stages:
//
//	0 advertise   client → server: X25519 channel public key
//	1 roster      server → clients: all public keys (gob)
//	2 shares      client → server: sealed coded shares (binary codec)
//	3 deliver     server → client: the envelopes addressed to it
//	4 masked      client → server: y_i = x_i + z_i (binary codec)
//	5 survivors   server → clients: ids that uploaded (gob)
//	6 aggshare    client → server: Σ_{i∈survivors} f_i(α_me) (binary)
//	7 result      server → clients: the aggregate (binary codec)
//
// The server collects every stage through engine.Collect: frames are
// admitted as they arrive, decoded concurrently on the bounded worker
// pool, and applied to the incremental Server in admission order, so the
// masked stage folds uploads into the running aggregate while later
// uploads are still in flight, and the recovery stage completes on the
// first U aggregate shares (engine quorum) instead of waiting for every
// survivor. With sessions (WireServerConfig.Session / WireClientConfig.
// Session and the Resume flags), consecutive rounds skip the advertise
// round trip and reuse the cached channel secrets and coding matrices.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/transport"
)

// Wire stage tags (transport.Frame.Stage).
const (
	wireAdvertise = iota
	wireRoster
	wireShares
	wireDeliver
	wireMasked
	wireSurvivors
	wireAggShare
	wireResult
)

// WireStage identifies a point in the client lifecycle for dropout
// injection.
type WireStage int

// Dropout injection points (the client vanishes before this action).
const (
	WireNoDrop WireStage = iota
	WireDropBeforeMasked
	WireDropBeforeAggShare
)

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("lightsecagg: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(p []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(v); err != nil {
		return fmt.Errorf("lightsecagg: decoding payload: %w", err)
	}
	return nil
}

// WireServerConfig configures the wire server for one round.
type WireServerConfig struct {
	Config        Config
	StageDeadline time.Duration // per-stage collection deadline

	// Session, when non-nil, carries the recovery-weight and roster caches
	// across the rounds that share it; with Resume, the advertise stage is
	// skipped entirely and the round starts from the session's cached
	// roster (the deployment must set the matching flags on every client).
	// Whether the next round may resume is what the re-key handshake
	// (core.RunHandshakeServer) negotiates.
	Session *ServerSession
	Resume  bool
	// Divergent, with Resume, makes the resume partial (core handshake's
	// divergent subset): the advertise stage collects fresh channel keys
	// from exactly this subset, merges them with the cached roster, and
	// broadcasts the merged roster to everyone.
	Divergent []uint64

	// Engine, when non-nil, is an externally owned round engine whose
	// transport fan-in this round collects through. Multi-round deployments
	// must share one engine across the handshake and every round on a
	// connection — a second fan-in would steal frames from the first. nil
	// builds a round-scoped engine (single-round callers).
	Engine *engine.Engine
}

func broadcast(conn transport.ServerConn, ids []uint64, stage int, payload []byte) {
	for _, id := range ids {
		// Errors mean the client vanished; the protocol's thresholds
		// handle that downstream.
		_ = conn.SendTo(id, transport.Frame{Stage: stage, Payload: payload})
	}
}

// RunWireServer drives the server side of one LightSecAgg round through
// the shared round engine.
func RunWireServer(ctx context.Context, cfg WireServerConfig, conn transport.ServerConn) ([]field.Element, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.StageDeadline <= 0 {
		cfg.StageDeadline = 2 * time.Second
	}
	if cfg.Resume && cfg.Session == nil {
		return nil, fmt.Errorf("lightsecagg: resume requires a server session")
	}
	c := cfg.Config
	ids := c.ClientIDs

	server, err := NewSessionServer(c, cfg.Session)
	if err != nil {
		return nil, err
	}
	roundCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	eng := cfg.Engine
	if eng == nil {
		eng = engine.New(engine.TransportSource(roundCtx, conn))
	}
	collect := func(name string, tag int, expect []uint64, quorum int,
		decode func(m engine.Msg) (any, error), apply func(from uint64, body any) error) error {
		_, err := eng.Collect(roundCtx, engine.Stage{
			Name: name, Tag: tag, Expect: expect, Quorum: quorum,
			Deadline: cfg.StageDeadline, Decode: decode, Apply: apply,
		})
		return err
	}

	// Stage 0/1: channel keys — collected over the wire, skipped entirely
	// on a full resume, or collected from just the divergent subset on a
	// partial resume (cached entries pre-seed the stage, the merged roster
	// is broadcast to everyone).
	partial := cfg.Resume && len(cfg.Divergent) > 0
	var roster []AdvertiseMsg
	switch {
	case cfg.Resume && !partial:
		roster = cfg.Session.RosterFor(ids)
		if roster == nil {
			return nil, fmt.Errorf("lightsecagg: resume without a cached roster for this client set")
		}
		if err := server.InstallRoster(roster); err != nil {
			return nil, err
		}
	case partial:
		cached := cfg.Session.RosterFor(ids)
		if cached == nil {
			return nil, fmt.Errorf("lightsecagg: partial resume without a cached roster for this client set")
		}
		for _, m := range cached {
			if err := server.AddAdvertise(m); err != nil {
				return nil, err
			}
		}
		err = collect("advertise", wireAdvertise, cfg.Divergent, 0, nil,
			func(from uint64, body any) error {
				return server.AddAdvertise(AdvertiseMsg{From: from, Pub: body.([]byte)})
			})
		if err != nil {
			return nil, err
		}
		if roster, err = server.SealAdvertise(); err != nil {
			return nil, err
		}
		cfg.Session.StoreRoster(roster, ids)
		rosterPayload, err := gobEncode(roster)
		if err != nil {
			return nil, err
		}
		broadcast(conn, ids, wireRoster, rosterPayload)
	default:
		err = collect("advertise", wireAdvertise, ids, 0, nil,
			func(from uint64, body any) error {
				return server.AddAdvertise(AdvertiseMsg{From: from, Pub: body.([]byte)})
			})
		if err != nil {
			return nil, err
		}
		if roster, err = server.SealAdvertise(); err != nil {
			return nil, err
		}
		cfg.Session.StoreRoster(roster, ids)
		rosterPayload, err := gobEncode(roster)
		if err != nil {
			return nil, err
		}
		broadcast(conn, ids, wireRoster, rosterPayload)
	}

	// Stage 2/3: sealed share envelopes, routed into recipient outboxes
	// on arrival.
	err = collect("shares", wireShares, ids, 0,
		func(m engine.Msg) (any, error) { return decodeEnvelopes(m.Body.([]byte)) },
		func(from uint64, body any) error {
			return server.AddShareBundle(from, body.([]Envelope))
		})
	if err != nil {
		return nil, err
	}
	deliveries, err := server.SealShareBundles()
	if err != nil {
		return nil, err
	}
	for id, envs := range deliveries {
		payload, err := encodeEnvelopes(envs)
		if err != nil {
			return nil, err
		}
		_ = conn.SendTo(id, transport.Frame{Stage: wireDeliver, Payload: payload})
	}

	// Stage 4/5: masked inputs fold into the running partial aggregate as
	// they decode; the stage close is a threshold check plus sort.
	err = collect("masked", wireMasked, ids, 0,
		func(m engine.Msg) (any, error) { return decodeMasked(m.Body.([]byte)) },
		func(from uint64, body any) error {
			// Stamp the transport-verified origin over whatever the payload
			// claims, so one client cannot spoof another's upload (the same
			// defense AddShareBundle applies to envelopes).
			m := body.(MaskedMsg)
			m.From = from
			return server.AddMasked(m)
		})
	if err != nil {
		return nil, err
	}
	survivors, err := server.SealMasked()
	if err != nil {
		return nil, err
	}
	survPayload, err := gobEncode(survivors)
	if err != nil {
		return nil, err
	}
	broadcast(conn, survivors, wireSurvivors, survPayload)

	// Stage 6: one-shot aggregate shares — any U responses complete the
	// stage (engine quorum), stragglers need not be waited out.
	err = collect("agg-share", wireAggShare, survivors, c.RecoveryThreshold(),
		func(m engine.Msg) (any, error) { return decodeAggShare(m.Body.([]byte)) },
		func(from uint64, body any) error {
			// Transport-verified origin wins here too: a spoofed From would
			// feed shares under the wrong rank into the recovery.
			m := body.(AggShareMsg)
			m.From = from
			return server.AddAggShare(m)
		})
	if err != nil {
		return nil, err
	}
	sum, err := server.SealAggShares()
	if err != nil {
		return nil, err
	}
	resPayload, err := encodeLSAResult(sum)
	if err != nil {
		return nil, err
	}
	broadcast(conn, survivors, wireResult, resPayload)
	return sum, nil
}

// WireClientConfig configures one wire client.
type WireClientConfig struct {
	Config     Config
	ID         uint64
	Input      []field.Element
	DropBefore WireStage
	Rand       io.Reader

	// Session, when non-nil, carries this client's channel key, pairwise
	// secrets, and encoding matrix across the rounds that share it; with
	// Resume, the advertise round trip is skipped and the client resumes
	// on its cached roster (the deployment must set the matching flags on
	// the server).
	Session *Session
	Resume  bool
	// Divergent, with Resume, makes the resume partial: a divergent client
	// advertises its fresh channel key like a re-keyed one; every other
	// client skips advertise but waits for the merged roster broadcast
	// instead of reusing its cached copy.
	Divergent []uint64
}

// RunWireClient drives one client through the round. It returns the
// aggregate (nil when the client drops or is excluded from the result
// broadcast).
func RunWireClient(ctx context.Context, cfg WireClientConfig, conn transport.ClientConn) ([]field.Element, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resume && cfg.Session == nil {
		return nil, fmt.Errorf("lightsecagg: resume requires a client session")
	}
	client, err := NewSessionClient(cfg.Config, cfg.ID, cfg.Rand, cfg.Session)
	if err != nil {
		return nil, err
	}

	// Stage 0/1: advertise the channel key and learn the roster, resume on
	// the session's cached roster, or the partial-resume variants: a
	// divergent client advertises fresh, a non-divergent one skips
	// advertise and takes the merged roster broadcast.
	partial := cfg.Resume && len(cfg.Divergent) > 0
	selfDivergent := false
	for _, id := range cfg.Divergent {
		if id == cfg.ID {
			selfDivergent = true
		}
	}
	var roster []AdvertiseMsg
	switch {
	case cfg.Resume && !partial:
		if roster = cfg.Session.Roster(); roster == nil {
			return nil, fmt.Errorf("lightsecagg: resume without a cached roster at client %d", cfg.ID)
		}
	case partial && !selfDivergent:
		f, err := recvStage(ctx, conn, wireRoster)
		if err != nil {
			return nil, err
		}
		if err := gobDecode(f.Payload, &roster); err != nil {
			return nil, err
		}
		if cfg.Session != nil {
			cfg.Session.StoreRoster(roster)
		}
	default:
		adv := client.Advertise()
		if err := conn.Send(transport.Frame{Stage: wireAdvertise, Payload: adv.Pub}); err != nil {
			return nil, err
		}
		f, err := recvStage(ctx, conn, wireRoster)
		if err != nil {
			return nil, err
		}
		if err := gobDecode(f.Payload, &roster); err != nil {
			return nil, err
		}
		if cfg.Session != nil {
			cfg.Session.StoreRoster(roster)
		}
	}

	// Stage 2: seal one coded share per peer.
	envs, err := client.SealShares(roster)
	if err != nil {
		return nil, err
	}
	payload, err := encodeEnvelopes(envs)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireShares, Payload: payload}); err != nil {
		return nil, err
	}

	// Stage 3: unseal the envelopes addressed to us.
	f, err := recvStage(ctx, conn, wireDeliver)
	if err != nil {
		return nil, err
	}
	inbox, err := decodeEnvelopes(f.Payload)
	if err != nil {
		return nil, err
	}
	if err := client.OpenEnvelopes(inbox); err != nil {
		return nil, err
	}

	// Stage 4: masked upload (dropout injection point).
	if cfg.DropBefore == WireDropBeforeMasked {
		return nil, conn.Close()
	}
	y, err := client.MaskedInput(cfg.Input)
	if err != nil {
		return nil, err
	}
	if payload, err = encodeMasked(MaskedMsg{From: cfg.ID, Y: y}); err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireMasked, Payload: payload}); err != nil {
		return nil, err
	}

	// Stage 5/6: survivors, then the one-shot aggregate share.
	f, err = recvStage(ctx, conn, wireSurvivors)
	if err != nil {
		return nil, err
	}
	var survivors []uint64
	if err := gobDecode(f.Payload, &survivors); err != nil {
		return nil, err
	}
	if cfg.DropBefore == WireDropBeforeAggShare {
		return nil, conn.Close()
	}
	agg, err := client.AggregateShare(survivors)
	if err != nil {
		return nil, err
	}
	if payload, err = encodeAggShare(AggShareMsg{From: cfg.ID, S: agg}); err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireAggShare, Payload: payload}); err != nil {
		return nil, err
	}

	// Stage 7: the result.
	f, err = recvStage(ctx, conn, wireResult)
	if err != nil {
		return nil, err
	}
	// Clean completion: clear the in-flight marker the handshake set (a
	// no-op on LightSecAgg sessions, which never carry taint, but kept for
	// lifecycle symmetry with the secagg wire client).
	if cfg.Session != nil {
		cfg.Session.ClearTaint()
	}
	return decodeLSAResult(f.Payload)
}

func recvStage(ctx context.Context, conn transport.ClientConn, stage int) (transport.Frame, error) {
	for {
		f, err := conn.Recv(ctx)
		if err != nil {
			return transport.Frame{}, err
		}
		if f.Stage == stage {
			return f, nil
		}
	}
}
