package lightsecagg

// Wire driver: one LightSecAgg round over a transport.Transport, mirroring
// package core's driver for SecAgg. Coded mask shares relay through the
// untrusted server (the star topology of §3.3), so they travel inside
// pairwise authenticated-encryption envelopes keyed by X25519 agreement —
// otherwise the server could collect U of them and unmask every client.
//
// Stages:
//
//	0 advertise   client → server: X25519 public key
//	1 roster      server → clients: all public keys
//	2 shares      client → server: AEAD-sealed coded shares, one per peer
//	3 deliver     server → client: the envelopes addressed to it
//	4 masked      client → server: y_i = x_i + z_i
//	5 survivors   server → clients: ids that uploaded
//	6 aggshare    client → server: Σ_{i∈survivors} f_i(α_me)
//	7 result      server → clients: the aggregate

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/aead"
	"repro/internal/dh"
	"repro/internal/field"
	"repro/internal/transport"
)

// Wire stage tags (transport.Frame.Stage).
const (
	wireAdvertise = iota
	wireRoster
	wireShares
	wireDeliver
	wireMasked
	wireSurvivors
	wireAggShare
	wireResult
)

// WireStage identifies a point in the client lifecycle for dropout
// injection.
type WireStage int

// Dropout injection points (the client vanishes before this action).
const (
	WireNoDrop WireStage = iota
	WireDropBeforeMasked
	WireDropBeforeAggShare
)

type envelope struct {
	To         uint64
	Ciphertext []byte
}

type sharesMsg struct{ Envelopes []envelope }

type rosterMsg struct {
	Pubs map[uint64][]byte
}

type survivorsMsg struct{ IDs []uint64 }

type resultMsg struct{ Sum []field.Element }

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("lightsecagg: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(p []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(v); err != nil {
		return fmt.Errorf("lightsecagg: decoding payload: %w", err)
	}
	return nil
}

// WireServerConfig configures the wire server for one round.
type WireServerConfig struct {
	Config        Config
	StageDeadline time.Duration // per-stage collection deadline
}

// collect gathers stage frames until every id in expect answered or the
// deadline fired.
func collect(ctx context.Context, conn transport.ServerConn, stage int,
	expect []uint64, deadline time.Duration) map[uint64][]byte {

	want := make(map[uint64]bool, len(expect))
	for _, id := range expect {
		want[id] = true
	}
	out := make(map[uint64][]byte)
	cctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	for len(out) < len(expect) {
		f, err := conn.Recv(cctx)
		if err != nil {
			break // deadline: proceed with what we have
		}
		if f.Stage != stage || !want[f.From] {
			continue
		}
		if _, dup := out[f.From]; dup {
			continue
		}
		out[f.From] = f.Payload
	}
	return out
}

func broadcast(conn transport.ServerConn, ids []uint64, stage int, payload []byte) {
	for _, id := range ids {
		_ = conn.SendTo(id, transport.Frame{Stage: stage, Payload: payload})
	}
}

// RunWireServer drives the server side of one LightSecAgg round.
func RunWireServer(ctx context.Context, cfg WireServerConfig, conn transport.ServerConn) ([]field.Element, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.StageDeadline <= 0 {
		cfg.StageDeadline = 2 * time.Second
	}
	c := cfg.Config
	ids := c.ClientIDs
	u := c.RecoveryThreshold()

	// Stage 0/1: public keys; the offline phase needs every sampled
	// client (the §6.1 dropout model has clients vanish later).
	adverts := collect(ctx, conn, wireAdvertise, ids, cfg.StageDeadline)
	if len(adverts) < len(ids) {
		return nil, fmt.Errorf("lightsecagg: only %d/%d clients advertised keys", len(adverts), len(ids))
	}
	roster := rosterMsg{Pubs: make(map[uint64][]byte, len(adverts))}
	for id, pub := range adverts {
		roster.Pubs[id] = pub
	}
	rosterPayload, err := gobEncode(roster)
	if err != nil {
		return nil, err
	}
	broadcast(conn, ids, wireRoster, rosterPayload)

	// Stage 2/3: relay the sealed share envelopes.
	shareFrames := collect(ctx, conn, wireShares, ids, cfg.StageDeadline)
	if len(shareFrames) < len(ids) {
		return nil, fmt.Errorf("lightsecagg: only %d/%d clients shared masks", len(shareFrames), len(ids))
	}
	perClient := make(map[uint64][]envelope, len(ids))
	for from, payload := range shareFrames {
		var msg sharesMsg
		if err := gobDecode(payload, &msg); err != nil {
			return nil, fmt.Errorf("lightsecagg: shares from %d: %w", from, err)
		}
		for _, env := range msg.Envelopes {
			// Stamp the true origin so a malicious peer cannot spoof;
			// the AEAD associated data binds (from, to) as well.
			perClient[env.To] = append(perClient[env.To], envelope{To: from, Ciphertext: env.Ciphertext})
		}
	}
	for id, envs := range perClient {
		payload, err := gobEncode(sharesMsg{Envelopes: envs})
		if err != nil {
			return nil, err
		}
		_ = conn.SendTo(id, transport.Frame{Stage: wireDeliver, Payload: payload})
	}

	// Stage 4/5: masked inputs from whoever is still alive.
	server, err := NewServer(c)
	if err != nil {
		return nil, err
	}
	maskedFrames := collect(ctx, conn, wireMasked, ids, cfg.StageDeadline)
	for id, payload := range maskedFrames {
		var y []field.Element
		if err := gobDecode(payload, &y); err != nil {
			return nil, fmt.Errorf("lightsecagg: masked input from %d: %w", id, err)
		}
		if err := server.CollectMasked(id, y); err != nil {
			return nil, err
		}
	}
	survivors := server.Survivors()
	if len(survivors) < u {
		return nil, fmt.Errorf("lightsecagg: %d survivors below recovery threshold %d", len(survivors), u)
	}
	survPayload, err := gobEncode(survivorsMsg{IDs: survivors})
	if err != nil {
		return nil, err
	}
	broadcast(conn, survivors, wireSurvivors, survPayload)

	// Stage 6: one-shot aggregate shares from ≥ U responders.
	aggFrames := collect(ctx, conn, wireAggShare, survivors, cfg.StageDeadline)
	aggShares := make(map[uint64][]field.Element, len(aggFrames))
	for id, payload := range aggFrames {
		var s []field.Element
		if err := gobDecode(payload, &s); err != nil {
			return nil, fmt.Errorf("lightsecagg: aggregate share from %d: %w", id, err)
		}
		aggShares[id] = s
	}
	sum, err := server.Reconstruct(aggShares)
	if err != nil {
		return nil, err
	}
	resPayload, err := gobEncode(resultMsg{Sum: sum})
	if err != nil {
		return nil, err
	}
	broadcast(conn, survivors, wireResult, resPayload)
	return sum, nil
}

// WireClientConfig configures one wire client.
type WireClientConfig struct {
	Config     Config
	ID         uint64
	Input      []field.Element
	DropBefore WireStage
	Rand       io.Reader
}

// RunWireClient drives one client through the round. It returns the
// aggregate (nil when the client drops or is excluded from the result
// broadcast).
func RunWireClient(ctx context.Context, cfg WireClientConfig, conn transport.ClientConn) ([]field.Element, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	client, err := NewClient(cfg.Config, cfg.ID, cfg.Rand)
	if err != nil {
		return nil, err
	}
	kp, err := dh.Generate(cfg.Rand)
	if err != nil {
		return nil, err
	}

	// Stage 0/1: advertise the channel key, learn the roster.
	if err := conn.Send(transport.Frame{Stage: wireAdvertise, Payload: kp.PublicBytes()}); err != nil {
		return nil, err
	}
	f, err := recvStage(ctx, conn, wireRoster)
	if err != nil {
		return nil, err
	}
	var roster rosterMsg
	if err := gobDecode(f.Payload, &roster); err != nil {
		return nil, err
	}

	// Stage 2: seal one coded share per peer. The AD binds sender and
	// recipient so the relay cannot re-route envelopes undetected.
	shares, err := client.EncodeShares()
	if err != nil {
		return nil, err
	}
	msg := sharesMsg{Envelopes: make([]envelope, 0, len(shares))}
	for to, share := range shares {
		pub, ok := roster.Pubs[to]
		if !ok {
			return nil, fmt.Errorf("lightsecagg: no channel key for peer %d", to)
		}
		key, err := kp.Agree(pub)
		if err != nil {
			return nil, err
		}
		pt, err := gobEncode(share)
		if err != nil {
			return nil, err
		}
		ct, err := aead.Seal(key, cfg.Rand, pt, routeAD(cfg.ID, to))
		if err != nil {
			return nil, err
		}
		msg.Envelopes = append(msg.Envelopes, envelope{To: to, Ciphertext: ct})
	}
	payload, err := gobEncode(msg)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireShares, Payload: payload}); err != nil {
		return nil, err
	}

	// Stage 3: unseal the envelopes addressed to us.
	f, err = recvStage(ctx, conn, wireDeliver)
	if err != nil {
		return nil, err
	}
	var inbox sharesMsg
	if err := gobDecode(f.Payload, &inbox); err != nil {
		return nil, err
	}
	for _, env := range inbox.Envelopes {
		from := env.To // server stamped the origin here
		pub, ok := roster.Pubs[from]
		if !ok {
			return nil, fmt.Errorf("lightsecagg: envelope from unknown peer %d", from)
		}
		key, err := kp.Agree(pub)
		if err != nil {
			return nil, err
		}
		pt, err := aead.Open(key, env.Ciphertext, routeAD(from, cfg.ID))
		if err != nil {
			return nil, fmt.Errorf("lightsecagg: envelope from %d failed authentication: %w", from, err)
		}
		var share []field.Element
		if err := gobDecode(pt, &share); err != nil {
			return nil, err
		}
		if err := client.ReceiveShare(from, share); err != nil {
			return nil, err
		}
	}

	// Stage 4: masked upload (dropout injection point).
	if cfg.DropBefore == WireDropBeforeMasked {
		return nil, conn.Close()
	}
	y, err := client.MaskedInput(cfg.Input)
	if err != nil {
		return nil, err
	}
	yPayload, err := gobEncode(y)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireMasked, Payload: yPayload}); err != nil {
		return nil, err
	}

	// Stage 5/6: survivors, then the one-shot aggregate share.
	f, err = recvStage(ctx, conn, wireSurvivors)
	if err != nil {
		return nil, err
	}
	var surv survivorsMsg
	if err := gobDecode(f.Payload, &surv); err != nil {
		return nil, err
	}
	if cfg.DropBefore == WireDropBeforeAggShare {
		return nil, conn.Close()
	}
	agg, err := client.AggregateShare(surv.IDs)
	if err != nil {
		return nil, err
	}
	aggPayload, err := gobEncode(agg)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(transport.Frame{Stage: wireAggShare, Payload: aggPayload}); err != nil {
		return nil, err
	}

	// Stage 7: the result.
	f, err = recvStage(ctx, conn, wireResult)
	if err != nil {
		return nil, err
	}
	var res resultMsg
	if err := gobDecode(f.Payload, &res); err != nil {
		return nil, err
	}
	return res.Sum, nil
}

func recvStage(ctx context.Context, conn transport.ClientConn, stage int) (transport.Frame, error) {
	for {
		f, err := conn.Recv(ctx)
		if err != nil {
			return transport.Frame{}, err
		}
		if f.Stage == stage {
			return f, nil
		}
	}
}

func routeAD(from, to uint64) []byte {
	return []byte(fmt.Sprintf("lsa/%d/%d", from, to))
}
