package lightsecagg

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/dh"
)

func TestLSASessionPersistRoundTrip(t *testing.T) {
	a, err := NewSession(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.channelKey(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	roster := []AdvertiseMsg{
		{From: 1, Pub: a.PublicBytes()},
		{From: 2, Pub: b.PublicBytes()},
	}
	a.StoreRoster(roster)

	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.PublicBytes(), a.PublicBytes()) {
		t.Fatal("channel key changed in round trip")
	}
	wantHash, ok1 := a.StateHash()
	gotHash, ok2 := restored.StateHash()
	if !ok1 || !ok2 || wantHash != gotHash {
		t.Fatalf("state hash mismatch after restore (%v/%v)", ok1, ok2)
	}

	agreeBefore, genBefore := dh.AgreeCount(), dh.GenerateCount()
	got, err := restored.channelKey(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("cached channel secret changed in round trip")
	}
	if dh.AgreeCount() != agreeBefore || dh.GenerateCount() != genBefore {
		t.Fatal("restore performed X25519 work")
	}
}

func TestLSASessionPersistMalformed(t *testing.T) {
	s, err := NewSession(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s.StoreRoster([]AdvertiseMsg{{From: 1, Pub: make([]byte, 32)}})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte{0x00}, blob[1:]...),
		"bad tag":       append([]byte{blob[0], 0x99}, blob[2:]...),
		"bad version":   append([]byte{blob[0], blob[1], 99}, blob[3:]...),
		"truncated":     blob[:len(blob)-1],
		"trailing byte": append(append([]byte(nil), blob...), 0),
	}
	for name, p := range cases {
		if _, err := UnmarshalSession(p); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	for i := 0; i < len(blob); i++ {
		_, _ = UnmarshalSession(blob[:i]) // must not panic
	}
}
