package lightsecagg

import (
	"encoding/binary"
	"fmt"

	"repro/internal/field"
	"repro/internal/transport"
)

// Binary payload codec for the volume wire messages, following the
// magic/tag layout of internal/core/codec.go (the packages cannot share
// code directly — core imports lightsecagg for the RunRound substrate —
// but they share the transport slab helpers and the same conventions).
//
// The messages that dominate the round's byte volume ride these layouts:
// the masked uploads and the result broadcast (dim-length element
// vectors), the n² sealed share envelopes (LightSecAgg's structurally
// heavy offline phase — n·d/(U−T) elements per client), and the aggregate
// shares of the one-shot recovery. The remaining control messages (roster,
// survivor set) stay on gob: their cost is irrelevant and gob's tolerance
// of structural evolution is worth keeping there.
//
// Layout (all integers little-endian):
//
//	masked:    [magic][tagMasked][From:8][n:4][Y: n×8]
//	aggshare:  [magic][tagAggShare][From:8][n:4][S: n×8]
//	result:    [magic][tagLSAResult][n:4][Sum: n×8]
//	envelopes: [magic][tagEnvelopes][n:4]
//	           n × ([From:8][To:8][ctLen:4][Ciphertext: ctLen bytes])
//	share vec: [n:4][S: n×8]   (AEAD plaintext inside an envelope)
//
// The magic byte distinguishes the binary codec from a gob stream, so a
// mixed-version peer fails loudly rather than mis-decoding.
const (
	lsaMagic     = 0xD1
	tagMasked    = 0x01
	tagAggShare  = 0x02
	tagLSAResult = 0x03
	tagEnvelopes = 0x04
)

// maxLSAElems caps decoded element-slab lengths so a hostile length prefix
// cannot force a huge allocation; sized like core's cap to the transport's
// frame limit.
const maxLSAElems = 1 << 25

// maxEnvelopes and maxEnvelopeCtBytes bound the envelope list decode the
// same way core bounds its share bundles.
const (
	maxEnvelopes       = 1 << 20
	maxEnvelopeCtBytes = 1 << 24
)

func appendElems(dst []byte, xs []field.Element) ([]byte, error) {
	if len(xs) > maxLSAElems {
		return nil, fmt.Errorf("lightsecagg: slab of %d elements exceeds wire cap", len(xs))
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(xs)))
	dst = append(dst, b[:]...)
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, x.Uint64())
	}
	return dst, nil
}

func decodeElems(src []byte) ([]field.Element, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("lightsecagg: slab header truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > maxLSAElems {
		return nil, nil, fmt.Errorf("lightsecagg: declared slab of %d elements exceeds wire cap", n)
	}
	words, rest, err := transport.DecodeUint64sLE(src[4:], n)
	if err != nil {
		return nil, nil, fmt.Errorf("lightsecagg: %w", err)
	}
	out := make([]field.Element, n)
	for i, w := range words {
		out[i] = field.New(w)
	}
	return out, rest, nil
}

// encodeShareVector is the AEAD plaintext layout of one coded share.
func encodeShareVector(s []field.Element) []byte {
	out, _ := appendElems(make([]byte, 0, 4+8*len(s)), s)
	return out
}

func decodeShareVector(p []byte) ([]field.Element, error) {
	s, rest, err := decodeElems(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lightsecagg: share vector: %d trailing bytes", len(rest))
	}
	return s, nil
}

// encodeFromVector encodes the shared [From][slab] shape of masked and
// aggregate-share messages.
func encodeFromVector(tag byte, from uint64, xs []field.Element) ([]byte, error) {
	out := make([]byte, 0, 2+8+4+8*len(xs))
	out = append(out, lsaMagic, tag)
	out = binary.LittleEndian.AppendUint64(out, from)
	return appendElems(out, xs)
}

func decodeFromVector(tag byte, p []byte) (uint64, []field.Element, error) {
	if len(p) < 10 || p[0] != lsaMagic || p[1] != tag {
		return 0, nil, fmt.Errorf("lightsecagg: not a binary payload with tag %#x", tag)
	}
	from := binary.LittleEndian.Uint64(p[2:])
	xs, rest, err := decodeElems(p[10:])
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("lightsecagg: payload: %d trailing bytes", len(rest))
	}
	return from, xs, nil
}

func encodeMasked(m MaskedMsg) ([]byte, error) {
	return encodeFromVector(tagMasked, m.From, m.Y)
}

func decodeMasked(p []byte) (MaskedMsg, error) {
	from, y, err := decodeFromVector(tagMasked, p)
	if err != nil {
		return MaskedMsg{}, fmt.Errorf("lightsecagg: masked input: %w", err)
	}
	return MaskedMsg{From: from, Y: y}, nil
}

func encodeAggShare(m AggShareMsg) ([]byte, error) {
	return encodeFromVector(tagAggShare, m.From, m.S)
}

func decodeAggShare(p []byte) (AggShareMsg, error) {
	from, s, err := decodeFromVector(tagAggShare, p)
	if err != nil {
		return AggShareMsg{}, fmt.Errorf("lightsecagg: aggregate share: %w", err)
	}
	return AggShareMsg{From: from, S: s}, nil
}

func encodeLSAResult(sum []field.Element) ([]byte, error) {
	out := make([]byte, 0, 2+4+8*len(sum))
	out = append(out, lsaMagic, tagLSAResult)
	return appendElems(out, sum)
}

func decodeLSAResult(p []byte) ([]field.Element, error) {
	if len(p) < 2 || p[0] != lsaMagic || p[1] != tagLSAResult {
		return nil, fmt.Errorf("lightsecagg: not a binary result payload")
	}
	sum, rest, err := decodeElems(p[2:])
	if err != nil {
		return nil, fmt.Errorf("lightsecagg: result: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lightsecagg: result: %d trailing bytes", len(rest))
	}
	return sum, nil
}

// encodeEnvelopes encodes a sealed share list (uplink: one sender's
// envelopes; downlink: one recipient's delivery).
func encodeEnvelopes(envs []Envelope) ([]byte, error) {
	if len(envs) > maxEnvelopes {
		return nil, fmt.Errorf("lightsecagg: envelope list of %d exceeds wire cap", len(envs))
	}
	size := 2 + 4
	for _, e := range envs {
		size += 8 + 8 + 4 + len(e.Ciphertext)
	}
	out := make([]byte, 0, size)
	out = append(out, lsaMagic, tagEnvelopes)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(envs)))
	out = append(out, b[:]...)
	for _, e := range envs {
		if len(e.Ciphertext) > maxEnvelopeCtBytes {
			return nil, fmt.Errorf("lightsecagg: envelope ciphertext of %d bytes exceeds wire cap", len(e.Ciphertext))
		}
		out = binary.LittleEndian.AppendUint64(out, e.From)
		out = binary.LittleEndian.AppendUint64(out, e.To)
		binary.LittleEndian.PutUint32(b[:], uint32(len(e.Ciphertext)))
		out = append(out, b[:]...)
		out = append(out, e.Ciphertext...)
	}
	return out, nil
}

// decodeEnvelopes decodes a sealed share list. Counts the remaining bytes
// cannot carry are rejected before the slice allocation (each envelope
// costs at least its 20-byte header).
func decodeEnvelopes(p []byte) ([]Envelope, error) {
	if len(p) < 6 || p[0] != lsaMagic || p[1] != tagEnvelopes {
		return nil, fmt.Errorf("lightsecagg: not a binary envelope payload")
	}
	n := int(binary.LittleEndian.Uint32(p[2:]))
	if n > maxEnvelopes {
		return nil, fmt.Errorf("lightsecagg: declared envelope list of %d exceeds wire cap", n)
	}
	rest := p[6:]
	if n > len(rest)/20 {
		return nil, fmt.Errorf("lightsecagg: declared envelope list of %d exceeds payload", n)
	}
	var envs []Envelope
	if n > 0 {
		envs = make([]Envelope, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(rest) < 20 {
			return nil, fmt.Errorf("lightsecagg: envelope %d header truncated", i)
		}
		e := Envelope{
			From: binary.LittleEndian.Uint64(rest),
			To:   binary.LittleEndian.Uint64(rest[8:]),
		}
		ctLen := int(binary.LittleEndian.Uint32(rest[16:]))
		if ctLen > maxEnvelopeCtBytes {
			return nil, fmt.Errorf("lightsecagg: declared ciphertext of %d bytes exceeds wire cap", ctLen)
		}
		rest = rest[20:]
		if len(rest) < ctLen {
			return nil, fmt.Errorf("lightsecagg: envelope %d ciphertext truncated", i)
		}
		if ctLen > 0 {
			e.Ciphertext = append([]byte(nil), rest[:ctLen]...)
		}
		rest = rest[ctLen:]
		envs = append(envs, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lightsecagg: envelope list: %d trailing bytes", len(rest))
	}
	return envs, nil
}
