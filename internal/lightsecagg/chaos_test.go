package lightsecagg

import (
	"context"
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/transport"
)

// Frame-storm chaos suite against the engine-backed wire driver: every
// client's uplink replays stale frames, duplicates every message, and
// interleaves unknown-stage junk — all landing mid-collection in the
// engine's concurrent admission loop, with the binary codec decoding on
// the worker pool. Mirrors internal/core's chaos suite so both protocol
// families face the same torture. Run under -race in CI.

// frameStormClient wraps a client uplink so every Send also injects a
// replay of the client's first-ever frame (a stale advertise arriving
// during later stages), an exact duplicate of the current frame, and a
// frame with a stage tag no stage ever collects.
type frameStormClient struct {
	transport.ClientConn

	mu    sync.Mutex
	first *transport.Frame
}

func (c *frameStormClient) Send(f transport.Frame) error {
	c.mu.Lock()
	if c.first == nil {
		cp := f
		cp.Payload = append([]byte(nil), f.Payload...)
		c.first = &cp
	}
	stale := *c.first
	c.mu.Unlock()

	if err := c.ClientConn.Send(stale); err != nil {
		return err
	}
	if err := c.ClientConn.Send(f); err != nil {
		return err
	}
	if err := c.ClientConn.Send(f); err != nil {
		return err
	}
	// Unknown stage tag with junk payload: must be discarded, not decoded.
	return c.ClientConn.Send(transport.Frame{Stage: 999, Payload: []byte{0xDE, 0xAD}})
}

// stormWireRound runs one wire round with every client's uplink storming,
// per-client dropout injection, and optional sessions.
func stormWireRound(t *testing.T, cfg Config, inputs map[uint64][]field.Element,
	dropAt map[uint64]WireStage, serverSess *ServerSession,
	clientSess map[uint64]*Session, resume bool) ([]int64, error) {
	t.Helper()
	net := transport.NewMemoryNetwork(256)
	conns := make(map[uint64]transport.ClientConn, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		c, err := net.Connect(id)
		if err != nil {
			t.Fatal(err)
		}
		conns[id] = &frameStormClient{ClientConn: c}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range cfg.ClientIDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcfg := WireClientConfig{
				Config: cfg, ID: id, Input: inputs[id],
				DropBefore: dropAt[id], Rand: rand.Reader,
				Resume: resume,
			}
			if clientSess != nil {
				wcfg.Session = clientSess[id]
			}
			// Storming/dropping clients may legitimately error; the server
			// outcome is what the tests assert.
			_, _ = RunWireClient(ctx, wcfg, conns[id])
		}()
	}
	sum, err := RunWireServer(ctx, WireServerConfig{
		Config: cfg, StageDeadline: 500 * time.Millisecond,
		Session: serverSess, Resume: resume,
	}, net.Server())
	cancel()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(sum))
	for i, e := range sum {
		out[i] = Center(e)
	}
	return out, nil
}

// TestChaosFrameStormWireRound: the full storm against a clean round — it
// must complete with the exact expected sum, no spurious dropouts.
func TestChaosFrameStormWireRound(t *testing.T) {
	cfg := testConfig(5, 1, 1, 24)
	inputs, wantSum := makeInputs(cfg)
	got, err := stormWireRound(t, cfg, inputs, nil, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSum(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coord %d: %d, want %d", i, got[i], want[i])
		}
	}
}

// TestChaosFrameStormWithDropout: the storm plus genuine dropouts — one
// client vanishes before the masked upload (stale replays of its early
// frames keep arriving while later stages collect and must not resurrect
// it) and another vanishes before the recovery response (the quorum stage
// completes from the remaining responders).
func TestChaosFrameStormWithDropout(t *testing.T) {
	cfg := testConfig(6, 1, 2, 16) // U = 4
	inputs, wantSum := makeInputs(cfg)
	drops := map[uint64]WireStage{
		3: WireDropBeforeMasked,
		5: WireDropBeforeAggShare,
	}
	got, err := stormWireRound(t, cfg, inputs, drops, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSum(map[uint64]bool{3: true}) // 5 uploaded, so it is in the sum
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coord %d: %d, want %d", i, got[i], want[i])
		}
	}
}

// TestChaosFrameStormSessionResume: the storm against a resumed round —
// the advertise stage is skipped on the cached roster, so the stale
// replays include frames for a stage the server never collects this
// round, landing on live session caches serving concurrent decodes.
func TestChaosFrameStormSessionResume(t *testing.T) {
	cfg := testConfig(5, 1, 1, 16)
	inputs, wantSum := makeInputs(cfg)
	serverSess := NewServerSession()
	clientSess := make(map[uint64]*Session, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		s, err := NewSession(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		clientSess[id] = s
	}
	// Round 1 populates the caches (under storm, too).
	if _, err := stormWireRound(t, cfg, inputs, nil, serverSess, clientSess, false); err != nil {
		t.Fatal(err)
	}
	// Round 2 resumes: no advertise stage, cached channel secrets.
	got, err := stormWireRound(t, cfg, inputs, nil, serverSess, clientSess, true)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSum(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coord %d: %d, want %d", i, got[i], want[i])
		}
	}
}

// TestChaosStarvedRecoveryAborts: when dropouts push the responder count
// below the recovery threshold the server must abort with an error after
// its stage deadline — never hang, never emit a wrong aggregate.
func TestChaosStarvedRecoveryAborts(t *testing.T) {
	cfg := testConfig(5, 1, 1, 8) // U = 4
	inputs, _ := makeInputs(cfg)
	drops := map[uint64]WireStage{1: WireDropBeforeMasked, 2: WireDropBeforeMasked}
	start := time.Now()
	_, err := stormWireRound(t, cfg, inputs, drops, nil, nil, false)
	if err == nil {
		t.Fatal("expected abort: survivors below the recovery threshold")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("abort took %v — server should fail fast on starved stages", elapsed)
	}
}
