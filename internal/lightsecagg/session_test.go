package lightsecagg

import (
	"context"
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dh"
	"repro/internal/transport"
)

// TestSessionsAmortizeAgreements: m sub-rounds on one session set perform
// the X25519 work of one sub-round — key pairs generate once per client
// and pairwise channel secrets agree once per (pair, direction) — while
// session-less sub-rounds pay everything m times. Results stay exact.
func TestSessionsAmortizeAgreements(t *testing.T) {
	const subRounds = 3
	cfg := testConfig(6, 2, 2, 24)
	inputs, wantSum := makeInputs(cfg)

	g0, a0 := dh.GenerateCount(), dh.AgreeCount()
	for i := 0; i < subRounds; i++ {
		got, err := RunWithSessions(cfg, inputs, nil, rng("fresh"), nil)
		if err != nil {
			t.Fatal(err)
		}
		checkSum(t, got, wantSum(nil))
	}
	freshGens := dh.GenerateCount() - g0
	freshAgrees := dh.AgreeCount() - a0

	sess, err := NewRoundSessions(cfg.ClientIDs, rng("sess"))
	if err != nil {
		t.Fatal(err)
	}
	g0, a0 = dh.GenerateCount(), dh.AgreeCount()
	for i := 0; i < subRounds; i++ {
		got, err := RunWithSessions(cfg, inputs, nil, rng("shared"), sess)
		if err != nil {
			t.Fatal(err)
		}
		checkSum(t, got, wantSum(nil))
	}
	sharedGens := dh.GenerateCount() - g0
	sharedAgrees := dh.AgreeCount() - a0

	if sharedGens != 0 {
		t.Errorf("shared sessions generated %d key pairs mid-round, want 0 (NewRoundSessions pre-generates)", sharedGens)
	}
	if freshGens != uint64(subRounds*len(cfg.ClientIDs)) {
		t.Errorf("fresh path generated %d key pairs, want %d", freshGens, subRounds*len(cfg.ClientIDs))
	}
	// Fresh: every sub-round re-agrees everything. Shared: only the first
	// sub-round agrees (subsequent ones hit the cache). Allow slack for
	// concurrent duplicate cache fills (bounded, deterministic value).
	if sharedAgrees*2 > freshAgrees {
		t.Errorf("shared sessions agreed %d times vs %d fresh — no amortization", sharedAgrees, freshAgrees)
	}
}

// TestSessionsSkipAdvertiseOnResume: the second in-process round on a
// session set resumes from the cached roster — observable as zero
// agreements and an identical exact sum.
func TestSessionsSkipAdvertiseOnResume(t *testing.T) {
	cfg := testConfig(5, 1, 1, 16)
	inputs, wantSum := makeInputs(cfg)
	sess, err := NewRoundSessions(cfg.ClientIDs, rng("resume-keys"))
	if err != nil {
		t.Fatal(err)
	}
	if sess.resumable(cfg) {
		t.Fatal("fresh sessions must not be resumable before a sealed roster exists")
	}
	got, err := RunWithSessions(cfg, inputs, nil, rng("resume-r1"), sess)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(nil))
	if !sess.resumable(cfg) {
		t.Fatal("sessions must be resumable after the first completed round")
	}

	a0 := dh.AgreeCount()
	got, err = RunWithSessions(cfg, inputs, nil, rng("resume-r2"), sess)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(nil))
	if agrees := dh.AgreeCount() - a0; agrees != 0 {
		t.Errorf("resumed round performed %d agreements, want 0", agrees)
	}
}

// TestSessionsResumeWithDropouts: a resumed round still handles the §6.1
// dropout model — and because LightSecAgg's server never reconstructs
// client keys, the dropper's session stays valid for the round after.
func TestSessionsResumeWithDropouts(t *testing.T) {
	cfg := testConfig(6, 1, 2, 16)
	inputs, wantSum := makeInputs(cfg)
	sess, err := NewRoundSessions(cfg.ClientIDs, rng("drop-keys"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithSessions(cfg, inputs, nil, rng("drop-r1"), sess); err != nil {
		t.Fatal(err)
	}
	drops := DropSchedule{3: StageMaskedInput, 5: StageAggShare}
	got, err := RunWithSessions(cfg, inputs, drops, rng("drop-r2"), sess)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(map[uint64]bool{3: true}))
	// Third round: the round-2 dropper participates again on the same
	// session set.
	got, err = RunWithSessions(cfg, inputs, nil, rng("drop-r3"), sess)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(nil))
}

// TestEncodingMatrixCached: EncodeShares through one session computes the
// Lagrange basis once; the second call reuses the pointer-identical
// matrix.
func TestEncodingMatrixCached(t *testing.T) {
	cfg := testConfig(6, 2, 2, 24)
	sess, err := NewSession(rng("mat"))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := sess.matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sess.matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("matrix recomputed for identical geometry")
	}
	// A different geometry (different U) invalidates the cache. (The
	// matrix depends only on (n, U): changing T alone reuses it, since the
	// basis weights span all U pieces regardless of the data/noise split.)
	cfg2 := testConfig(6, 1, 3, 24)
	m3, err := sess.matrix(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("matrix not recomputed for a different geometry")
	}
}

// TestWireSessionResume: the wire drivers' Resume flags skip the
// advertise/roster round trip on a session set populated by a first
// round, and the resumed round produces the exact sum with zero new key
// generations.
func TestWireSessionResume(t *testing.T) {
	cfg := testConfig(5, 1, 1, 20)
	inputs, wantSum := makeInputs(cfg)
	serverSess := NewServerSession()
	clientSess := make(map[uint64]*Session, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		s, err := NewSession(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		clientSess[id] = s
	}

	runRound := func(resume bool) []int64 {
		net := transport.NewMemoryNetwork(256)
		conns := make(map[uint64]transport.ClientConn, len(cfg.ClientIDs))
		for _, id := range cfg.ClientIDs {
			c, err := net.Connect(id)
			if err != nil {
				t.Fatal(err)
			}
			conns[id] = c
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for _, id := range cfg.ClientIDs {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := RunWireClient(ctx, WireClientConfig{
					Config: cfg, ID: id, Input: inputs[id], Rand: rand.Reader,
					Session: clientSess[id], Resume: resume,
				}, conns[id])
				if err != nil {
					t.Errorf("client %d: %v", id, err)
				}
			}()
		}
		sum, err := RunWireServer(ctx, WireServerConfig{
			Config: cfg, StageDeadline: 800 * time.Millisecond,
			Session: serverSess, Resume: resume,
		}, net.Server())
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		out := make([]int64, len(sum))
		for i, e := range sum {
			out[i] = Center(e)
		}
		return out
	}

	first := runRound(false)
	g0, a0 := dh.GenerateCount(), dh.AgreeCount()
	second := runRound(true)
	if gens := dh.GenerateCount() - g0; gens != 0 {
		t.Errorf("resumed wire round generated %d key pairs, want 0", gens)
	}
	if agrees := dh.AgreeCount() - a0; agrees != 0 {
		t.Errorf("resumed wire round performed %d agreements, want 0", agrees)
	}
	want := wantSum(nil)
	for i := range want {
		if first[i] != want[i] || second[i] != want[i] {
			t.Fatalf("coord %d: first %d second %d want %d", i, first[i], second[i], want[i])
		}
	}
}

// TestEnvelopeRoundDomainSeparation: sessions make channel keys
// long-lived, so the envelope AD must bind the round — an envelope
// sealed in one (sub-)round must fail authentication when replayed into
// another round on the same session keys.
func TestEnvelopeRoundDomainSeparation(t *testing.T) {
	cfg := testConfig(3, 1, 1, 6)
	cfg.Round = 1
	sess, err := NewRoundSessions(cfg.ClientIDs, rng("ad-keys"))
	if err != nil {
		t.Fatal(err)
	}
	mkClient := func(id uint64, round uint64) *Client {
		c := cfg
		c.Round = round
		cl, err := NewSessionClient(c, id, rng("ad-cl"), sess.Client[id])
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	a := mkClient(1, 1)
	roster := []AdvertiseMsg{}
	for _, id := range cfg.ClientIDs {
		roster = append(roster, AdvertiseMsg{From: id, Pub: sess.Client[id].PublicBytes()})
	}
	envs, err := a.SealShares(roster)
	if err != nil {
		t.Fatal(err)
	}
	var toB *Envelope
	for i := range envs {
		if envs[i].To == 2 {
			toB = &envs[i]
		}
	}

	// Same round: opens fine.
	b1 := mkClient(2, 1)
	if _, err := b1.SealShares(roster); err != nil {
		t.Fatal(err)
	}
	if err := b1.OpenEnvelopes([]Envelope{*toB}); err != nil {
		t.Fatalf("same-round envelope rejected: %v", err)
	}

	// Replayed into round 2 on the same session keys: must fail auth.
	b2 := mkClient(2, 2)
	if _, err := b2.SealShares(roster); err != nil {
		t.Fatal(err)
	}
	if err := b2.OpenEnvelopes([]Envelope{*toB}); err == nil {
		t.Fatal("cross-round envelope replay authenticated — AD does not bind the round")
	}
}

func TestOneSwapApart(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{0, 1, 2}, []int{0, 1, 2}, false},       // identical
		{[]int{0, 1, 2}, []int{0, 1, 3}, true},        // tail swap
		{[]int{1, 2, 3}, []int{0, 2, 3}, true},        // head swap
		{[]int{0, 2, 4}, []int{0, 3, 4}, true},        // middle swap
		{[]int{0, 1, 2}, []int{0, 3, 4}, false},       // two swaps
		{[]int{0, 1, 2, 3}, []int{4, 5, 6, 7}, false}, // disjoint
		{[]int{0, 5}, []int{0, 9}, true},              // minimal cohort
	}
	for _, tc := range cases {
		if got := oneSwapApart(tc.a, tc.b); got != tc.want {
			t.Errorf("oneSwapApart(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := oneSwapApart(tc.b, tc.a); got != tc.want {
			t.Errorf("oneSwapApart(%v, %v) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
	}
}

// TestRecoveryWeightsIncremental: cohorts one straggler apart take the
// incremental swap update, and its weights are exactly the fresh
// computation's — interpolating with either must agree element-wise.
func TestRecoveryWeightsIncremental(t *testing.T) {
	cfg := testConfig(10, 3, 3, 64) // U = 7, parts = 4
	s := NewServerSession()
	base := []uint64{1, 2, 3, 4, 5, 6, 7}
	if _, err := s.recoveryWeights(cfg, base); err != nil {
		t.Fatal(err)
	}
	cohorts := [][]uint64{
		{1, 2, 3, 4, 5, 6, 9},  // one swap from base (7→9)
		{2, 3, 4, 5, 6, 7, 8},  // one swap from base (1→8)
		{1, 2, 3, 4, 5, 8, 9},  // one swap from the first derived cohort
		{1, 2, 4, 5, 6, 8, 10}, // several swaps from everything cached: cold path
	}
	for _, cohort := range cohorts {
		got, err := s.recoveryWeights(cfg, cohort)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (*ServerSession)(nil).recoveryWeights(cfg, cohort)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			for i := range want[k] {
				if got[k][i] != want[k][i] {
					t.Fatalf("cohort %v: weight [%d][%d] = %v, want %v (fresh)",
						cohort, k, i, got[k][i], want[k][i])
				}
			}
		}
	}
	// The original cohort still hits its cache entry untouched.
	again, err := s.recoveryWeights(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (*ServerSession)(nil).recoveryWeights(cfg, base)
	for k := range want {
		for i := range want[k] {
			if again[k][i] != want[k][i] {
				t.Fatalf("base cohort corrupted at [%d][%d]", k, i)
			}
		}
	}
}

// BenchmarkRecoveryWeights compares the cold O(parts·u²) cohort weight
// computation with the one-straggler incremental update (pr7 ledger).
func BenchmarkRecoveryWeights(b *testing.B) {
	cfg := testConfig(64, 16, 16, 4096) // U = 48, parts = 32
	base := make([]uint64, 48)
	swapped := make([]uint64, 48)
	for i := range base {
		base[i] = uint64(i + 1)
		swapped[i] = uint64(i + 1)
	}
	swapped[47] = 64 // straggler 48 replaced by 64

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (*ServerSession)(nil).recoveryWeights(cfg, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		s := NewServerSession()
		if _, err := s.recoveryWeights(cfg, base); err != nil {
			b.Fatal(err)
		}
		ranks := make([]int, len(swapped))
		for i, id := range swapped {
			r, err := cfg.rank(id)
			if err != nil {
				b.Fatal(err)
			}
			ranks[i] = r
		}
		baseRanks := make([]int, len(base))
		for i, id := range base {
			r, _ := cfg.rank(id)
			baseRanks[i] = r
		}
		old := recoveryEntry{ranks: baseRanks}
		old.ws, _ = (*ServerSession)(nil).recoveryWeights(cfg, base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := swapRecoveryWeights(cfg, old, ranks); err != nil {
				b.Fatal(err)
			}
		}
	})
}
