// Package lightsecagg implements LightSecAgg (So et al., MLSys 2022) — the
// strongest of the reduced-round secure-aggregation baselines the paper
// surveys in §2.3.2 (refs [41, 74, 75]). Unlike SecAgg/SecAgg+, which pay
// one secret-sharing reconstruction per dropped client, LightSecAgg
// reconstructs the *aggregate* of the surviving clients' masks in one shot
// via Lagrange-coded mask sharing.
//
// The paper's point about this family — "only handle a semi-honest
// adversary … with their communication cost still being high in FL
// practice" — is reproduced by this package: it offers no malicious-mode
// signatures or consistency checks (semi-honest only), and its per-client
// offline share traffic is n·d/(U−T) field elements, which the ablation
// experiment compares against SecAgg's seed-sized shares.
//
// Protocol sketch (parameters: n clients, privacy threshold T, dropout
// tolerance D, recovery threshold U = n − D > T):
//
//  1. Offline sharing. Client i draws a uniform mask z_i ∈ F^d, splits it
//     into U−T sub-vectors of length L = ⌈d/(U−T)⌉, appends T uniform
//     noise sub-vectors, and encodes the U pieces with a degree-(U−1)
//     polynomial vector f_i: f_i(β_k) = piece k. It sends f_i(α_j) to each
//     client j.
//  2. Masked upload. Client i uploads y_i = x_i + z_i[:d].
//  3. One-shot recovery. The server announces the surviving set U₁
//     (|U₁| ≥ U). Each live client j returns s_j = Σ_{i∈U₁} f_i(α_j). From
//     any U responses the server interpolates Σ_{i∈U₁} f_i at β_1..β_{U−T},
//     i.e. Σ z_i, and computes Σ x_i = Σ y_i − Σ z_i.
//
// Privacy: each f_i carries T uniform noise evaluations, so any T
// colluding clients' shares are jointly independent of z_i (standard
// Lagrange-coding argument); the server sees only masked inputs and
// aggregate shares.
//
// All arithmetic is over GF(2^61−1) (package field); signed model updates
// embed via Lift/Center.
//
// # Runtime architecture
//
// Since the round-engine unification (see ARCHITECTURE.md) this package is
// structured exactly like its SecAgg sibling:
//
//   - Client is a per-round state machine (Advertise → SealShares →
//     OpenEnvelopes → MaskedInput → AggregateShare) driven identically by
//     the in-process driver (Run/RunWithSessions, clients as goroutines)
//     and the wire driver (RunWireClient). Coded shares always travel
//     inside pairwise AEAD envelopes, in-process too, so both drivers
//     exercise the same crypto path.
//   - Server exposes incremental per-message Add*/Seal* collection
//     surfaces (AddAdvertise, AddShareBundle, AddMasked, AddAggShare, and
//     the matching Seal* closers) mirroring secagg.Server. Masked inputs
//     fold into a running partial aggregate on arrival, so sealing the
//     masked stage is an O(1) threshold check plus sort — not n decodes
//     plus n length-d vector adds — and the server never retains the
//     n·d masked matrix, only the d-length running sum.
//   - Both drivers collect stages through internal/engine: deadline-
//     bounded streaming admission, concurrent decode on a bounded worker
//     pool, applies serialized in admission order. The one-shot recovery
//     stage sets engine.Stage.Quorum = U, completing as soon as any U
//     aggregate shares arrive instead of waiting out stragglers.
//   - Session/ServerSession (session.go) amortize the fixed round costs —
//     X25519 channel agreements, the Lagrange encoding matrix, the
//     recovery interpolation weights, and the advertise round trip — across
//     the chunks of one pipelined round and across consecutive rounds,
//     plugged into core.RunRound's SessionPool.
//   - The volume payloads (masked models, sealed share envelopes,
//     aggregate shares, the result broadcast) use the binary wire codec in
//     codec.go, following core/codec.go's magic/tag layout; only the
//     low-rate control messages (roster, survivor set) stay on gob.
package lightsecagg

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/aead"
	"repro/internal/field"
	"repro/internal/prg"
	"repro/internal/transcript"
)

// transcriptDigest adapts a field-element vector to the transcript
// layer's canonical masked-input digest (transcript.Digest over the
// little-endian uint64 representation).
func transcriptDigest(y []field.Element) [32]byte {
	u := make([]uint64, len(y))
	for i, v := range y {
		u[i] = uint64(v)
	}
	return transcript.Digest(u)
}

// Config fixes one LightSecAgg round. All parties must agree on it.
type Config struct {
	ClientIDs []uint64 // sampled set, sorted ascending
	PrivacyT  int      // T: colluding clients tolerated
	Dropout   int      // D: dropouts tolerated
	Dim       int      // input vector length d
	// Round domain-separates the AEAD envelopes of this (sub-)round.
	// Sessions make channel keys long-lived, so without it a malicious
	// relay could replay a stale envelope from an earlier chunk or round
	// under the same key and AD, silently corrupting the recipient's
	// share table. Drivers running several sub-rounds on one session set
	// (core.RunRound's chunks) must give each a distinct Round.
	Round uint64

	// TranscriptDigests, when true, has both sides record SHA-256 digests
	// of masked inputs for the verifiable-transcript layer (the
	// LightSecAgg mirror of secagg.Config.TranscriptDigests): the server
	// captures each arrival's digest in AddMasked, the client its own
	// upload's in MaskedInput. Off by default; changes no wire bytes. See
	// internal/transcript.
	TranscriptDigests bool
}

// Validate checks the LightSecAgg feasibility constraints: n − D > T ≥ 1
// would be ideal, but T = 0 (no collusion privacy, masks still hide
// individual updates from the server) is also permitted.
func (c Config) Validate() error {
	n := len(c.ClientIDs)
	switch {
	case n < 2:
		return fmt.Errorf("lightsecagg: need at least 2 clients, got %d", n)
	case c.Dim <= 0:
		return fmt.Errorf("lightsecagg: Dim must be positive, got %d", c.Dim)
	case c.PrivacyT < 0:
		return fmt.Errorf("lightsecagg: PrivacyT %d < 0", c.PrivacyT)
	case c.Dropout < 0:
		return fmt.Errorf("lightsecagg: Dropout %d < 0", c.Dropout)
	case n-c.Dropout <= c.PrivacyT:
		return fmt.Errorf("lightsecagg: recovery threshold U = n−D = %d must exceed T = %d",
			n-c.Dropout, c.PrivacyT)
	}
	for i := 1; i < n; i++ {
		if c.ClientIDs[i] <= c.ClientIDs[i-1] {
			return fmt.Errorf("lightsecagg: ClientIDs must be strictly ascending")
		}
	}
	return nil
}

// RecoveryThreshold returns U = n − D, the number of aggregate shares the
// server needs for one-shot mask recovery.
func (c Config) RecoveryThreshold() int { return len(c.ClientIDs) - c.Dropout }

// SubVectorLen returns L = ⌈d/(U−T)⌉, the length of each coded piece.
func (c Config) SubVectorLen() int {
	parts := c.RecoveryThreshold() - c.PrivacyT
	return (c.Dim + parts - 1) / parts
}

// PaddedDim returns (U−T)·L ≥ d, the mask length before coding.
func (c Config) PaddedDim() int {
	return (c.RecoveryThreshold() - c.PrivacyT) * c.SubVectorLen()
}

// Evaluation points: data/noise pieces live at β_k = k (k = 1..U), client
// shares at α_j = U + 1 + rank(j). All distinct by construction.
func (c Config) beta(k int) field.Element { return field.New(uint64(k)) }

func (c Config) alpha(rank int) field.Element {
	return field.New(uint64(c.RecoveryThreshold() + 1 + rank))
}

func (c Config) rank(id uint64) (int, error) {
	i := sort.Search(len(c.ClientIDs), func(i int) bool { return c.ClientIDs[i] >= id })
	if i == len(c.ClientIDs) || c.ClientIDs[i] != id {
		return 0, fmt.Errorf("lightsecagg: unknown client id %d", id)
	}
	return i, nil
}

// lagrangeWeights returns w_k = Π_{m≠k} (x−β_m)/(β_k−β_m) for k = 1..U at
// the evaluation point x, so f(x) = Σ_k w_k·f(β_k). Interpolation from
// arbitrary abscissas uses lagrangeWeightsAt instead.
func (c Config) lagrangeWeights(x field.Element) ([]field.Element, error) {
	u := c.RecoveryThreshold()
	xs := make([]field.Element, u)
	for k := 0; k < u; k++ {
		xs[k] = c.beta(k + 1)
	}
	return lagrangeWeightsAt(xs, x)
}

// lagrangeWeightsAt returns the Lagrange basis weights for interpolating a
// polynomial of degree < len(xs) at x, given sample abscissas xs. The
// denominators are inverted in one batch (field.BatchInv) instead of one
// Fermat inversion per weight.
func lagrangeWeightsAt(xs []field.Element, x field.Element) ([]field.Element, error) {
	n := len(xs)
	num := make([]field.Element, n)
	den := make([]field.Element, n)
	for k := 0; k < n; k++ {
		nk := field.New(1)
		dk := field.New(1)
		for m := 0; m < n; m++ {
			if m == k {
				continue
			}
			nk = field.Mul(nk, field.Sub(x, xs[m]))
			dk = field.Mul(dk, field.Sub(xs[k], xs[m]))
		}
		num[k] = nk
		den[k] = dk
	}
	dinv, err := field.BatchInv(den)
	if err != nil {
		return nil, fmt.Errorf("lightsecagg: coincident abscissas: %w", err)
	}
	ws := make([]field.Element, n)
	for k := range ws {
		ws[k] = field.Mul(num[k], dinv[k])
	}
	return ws, nil
}

// Protocol messages. Drivers carry these typed in-process and through the
// binary codec (codec.go) on the wire.

// AdvertiseMsg is the stage-0 channel-key advertisement.
type AdvertiseMsg struct {
	From uint64
	Pub  []byte // X25519 channel public key
}

// Envelope is one AEAD-sealed coded share in transit. On the uplink, From
// is the sealing client and To the addressee; the server re-stamps From
// with the transport-verified origin before relaying, so a malicious peer
// cannot spoof the sender (the AEAD associated data binds the route too).
type Envelope struct {
	From, To   uint64
	Ciphertext []byte
}

// MaskedMsg is the stage-2 masked upload y_i = x_i + z_i.
type MaskedMsg struct {
	From uint64
	Y    []field.Element
}

// AggShareMsg is the one-shot recovery response s_j = Σ_{i∈U₁} f_i(α_j).
type AggShareMsg struct {
	From uint64
	S    []field.Element
}

// routeAD binds an envelope's round and (sender, recipient) route into
// the AEAD associated data, so the relaying server can neither re-route
// an envelope nor replay one from an earlier chunk or round of the same
// session undetected.
func routeAD(round, from, to uint64) []byte {
	return []byte(fmt.Sprintf("lsa/%d/%d/%d", round, from, to))
}

// Client is one participant's round state machine. Its stage methods are
// driven identically by the in-process driver (run.go) and the wire driver
// (wire.go); see the package comment for the stage order.
type Client struct {
	cfg     Config
	id      uint64
	session *Session  // channel key + caches; private ephemeral when the caller passed nil
	rand    io.Reader // AEAD nonce randomness

	mask []field.Element // z_i, PaddedDim long

	// pieces are the U coded inputs: U−T mask sub-vectors then T noise
	// sub-vectors, each SubVectorLen long.
	pieces [][]field.Element

	// roster maps peer id → channel public key once SealShares ran.
	roster map[uint64][]byte

	// maskedDigest is the transcript digest of this client's own masked
	// upload (only with cfg.TranscriptDigests).
	maskedDigest    [32]byte
	hasMaskedDigest bool

	// received accumulates f_i(α_self) from every client i (including
	// self).
	received map[uint64][]field.Element
}

// NewClient draws the mask and coding noise from rand with a fresh
// ephemeral channel key (no cross-round session).
func NewClient(cfg Config, id uint64, rand io.Reader) (*Client, error) {
	return NewSessionClient(cfg, id, rand, nil)
}

// NewSessionClient is NewClient with an optional key-agreement session:
// when sess is non-nil, the client advertises the session's long-lived
// channel key and reuses its cached pairwise secrets and encoding matrix
// instead of paying X25519 agreement and Lagrange weight computation per
// round. The mask and coding noise are always drawn fresh — they are
// one-time pads revealed in aggregate.
func NewSessionClient(cfg Config, id uint64, rand io.Reader, sess *Session) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.rank(id); err != nil {
		return nil, err
	}
	if sess == nil {
		var err error
		if sess, err = NewSession(rand); err != nil {
			return nil, err
		}
	}
	l := cfg.SubVectorLen()
	u := cfg.RecoveryThreshold()
	parts := u - cfg.PrivacyT

	mask := make([]field.Element, cfg.PaddedDim())
	if err := fillUniform(rand, mask); err != nil {
		return nil, err
	}
	pieces := make([][]field.Element, u)
	for k := 0; k < parts; k++ {
		pieces[k] = mask[k*l : (k+1)*l]
	}
	for k := parts; k < u; k++ {
		noise := make([]field.Element, l)
		if err := fillUniform(rand, noise); err != nil {
			return nil, err
		}
		pieces[k] = noise
	}
	return &Client{
		cfg:      cfg,
		id:       id,
		session:  sess,
		rand:     rand,
		mask:     mask,
		pieces:   pieces,
		received: make(map[uint64][]field.Element, len(cfg.ClientIDs)),
	}, nil
}

// uniformChunk is the element count per bulk randomness read: 16 KiB per
// reader call instead of one call per element.
const uniformChunk = 2048

// uniformSegMin is the smallest element count worth a dedicated expansion
// segment on the seekable-PRG fast path (see maskFanOut).
const uniformSegMin = 16384

// fillUniform draws uniform field elements from rand. The byte-to-element
// map is field.RandomElement's low-61-bit rule over consecutive 8-byte
// little-endian words, and the reader is consumed in bulk uniformChunk
// reads — byte-identical to the historical one-ReadFull-per-element loop
// for any reader, just without the per-element call overhead. When rand is
// a seekable prg.Stream and the fill is large, the expansion additionally
// splits into independently seeked segments across the worker pool
// (prg.Stream.At — AES-CTR random access), still byte-identical to the
// sequential expansion.
func fillUniform(rand io.Reader, out []field.Element) error {
	if s, ok := rand.(*prg.Stream); ok {
		fillUniformSegmented(s, out)
		return nil
	}
	buf := make([]byte, 8*uniformChunk)
	for len(out) > 0 {
		n := len(out)
		if n > uniformChunk {
			n = uniformChunk
		}
		b := buf[:8*n]
		if _, err := io.ReadFull(rand, b); err != nil {
			return fmt.Errorf("lightsecagg: reading mask randomness: %w", err)
		}
		for i := 0; i < n; i++ {
			out[i] = field.RandomElement([8]byte(b[8*i:]))
		}
		out = out[n:]
	}
	return nil
}

// fillUniformSegmented expands out from a seekable PRG stream, splitting
// the keystream into up to GOMAXPROCS independently expanded segments when
// the fill is large. The stream is left positioned exactly 8·len(out)
// bytes past where it started, as if consumed sequentially.
func fillUniformSegmented(s *prg.Stream, out []field.Element) {
	workers := runtime.GOMAXPROCS(0)
	if w := len(out) / uniformSegMin; workers > w {
		workers = w
	}
	if workers <= 1 {
		fillUniformSpan(s, out)
		return
	}
	base := s.Offset()
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + (len(out)-lo)/(workers-w)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fillUniformSpan(s.At(base+8*uint64(lo)), out[lo:hi])
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	s.Seek(base + 8*uint64(len(out)))
}

// fillUniformSpan sequentially expands out from s via bulk word draws.
func fillUniformSpan(s *prg.Stream, out []field.Element) {
	var words [uniformChunk]uint64
	for len(out) > 0 {
		n := len(out)
		if n > uniformChunk {
			n = uniformChunk
		}
		ws := words[:n]
		s.FillUint64(ws)
		for i, w := range ws {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], w)
			out[i] = field.RandomElement(b)
		}
		out = out[n:]
	}
}

// Advertise returns the stage-0 channel-key advertisement.
func (c *Client) Advertise() AdvertiseMsg {
	return AdvertiseMsg{From: c.id, Pub: c.session.PublicBytes()}
}

// encTile is the sub-vector tile of the blocked share encoding: all U
// piece tiles (U·encTile·8 bytes) stay cache-resident while every rank's
// weights sweep over them, instead of re-streaming the full U·L piece set
// from memory once per rank.
const encTile = 1024

// EncodeShares returns the coded mask share f_i(α_j) for every client j
// (including self) — the plaintext of the offline-sharing message of step
// 1. Wire and in-process drivers seal these via SealShares; the plaintext
// form is exported for white-box tests and the cost model.
//
// The n×U Lagrange matrix–vector product is blocked over the sub-vector
// (encTile) for cache reuse across ranks, and each tile runs through
// field.WeightedSumInto's deferred-reduction kernel — one reduction per
// output element instead of one per term.
func (c *Client) EncodeShares() (map[uint64][]field.Element, error) {
	enc, err := c.session.matrix(c.cfg)
	if err != nil {
		return nil, err
	}
	l := c.cfg.SubVectorLen()
	out := make(map[uint64][]field.Element, len(c.cfg.ClientIDs))
	shares := make([][]field.Element, len(c.cfg.ClientIDs))
	for rank, id := range c.cfg.ClientIDs {
		shares[rank] = make([]field.Element, l)
		out[id] = shares[rank]
	}
	tile := make([][]field.Element, len(c.pieces))
	for base := 0; base < l; base += encTile {
		hi := base + encTile
		if hi > l {
			hi = l
		}
		for k, piece := range c.pieces {
			tile[k] = piece[base:hi]
		}
		for rank := range shares {
			field.WeightedSumInto(shares[rank][base:hi], enc.w[rank], tile)
		}
	}
	return out, nil
}

// encodeSharesNaive is the pre-blocking reference implementation (one
// rank at a time, Mul+Add per term), kept for the equality tests and as
// the bench ledger's before-side of the blocked kernel.
func (c *Client) encodeSharesNaive() (map[uint64][]field.Element, error) {
	enc, err := c.session.matrix(c.cfg)
	if err != nil {
		return nil, err
	}
	l := c.cfg.SubVectorLen()
	out := make(map[uint64][]field.Element, len(c.cfg.ClientIDs))
	for rank, id := range c.cfg.ClientIDs {
		ws := enc.w[rank]
		share := make([]field.Element, l)
		for k, w := range ws {
			piece := c.pieces[k]
			for t := 0; t < l; t++ {
				share[t] = field.Add(share[t], field.Mul(w, piece[t]))
			}
		}
		out[id] = share
	}
	return out, nil
}

// SealShares validates the stage-0 roster, remembers the peers' channel
// keys, and returns one AEAD envelope per peer carrying that peer's coded
// share — the step-1 upload. The associated data binds sender and
// recipient so the relaying server cannot re-route envelopes undetected.
func (c *Client) SealShares(roster []AdvertiseMsg) ([]Envelope, error) {
	if err := c.installRoster(roster); err != nil {
		return nil, err
	}
	shares, err := c.EncodeShares()
	if err != nil {
		return nil, err
	}
	out := make([]Envelope, 0, len(shares))
	for _, to := range c.cfg.ClientIDs {
		pub, ok := c.roster[to]
		if !ok {
			return nil, fmt.Errorf("lightsecagg: no channel key for peer %d", to)
		}
		key, err := c.session.channelKey(pub)
		if err != nil {
			return nil, err
		}
		pt := encodeShareVector(shares[to])
		ct, err := aead.Seal(key, c.rand, pt, routeAD(c.cfg.Round, c.id, to))
		if err != nil {
			return nil, err
		}
		out = append(out, Envelope{From: c.id, To: to, Ciphertext: ct})
	}
	return out, nil
}

// installRoster records the peers' channel public keys. Every sampled
// client must be present: the offline sharing phase needs the full set
// (the §6.1 dropout model has clients vanish later).
func (c *Client) installRoster(roster []AdvertiseMsg) error {
	pubs := make(map[uint64][]byte, len(roster))
	for _, m := range roster {
		if _, err := c.cfg.rank(m.From); err != nil {
			return err
		}
		if _, dup := pubs[m.From]; dup {
			return fmt.Errorf("lightsecagg: duplicate roster entry for %d", m.From)
		}
		pubs[m.From] = m.Pub
	}
	if len(pubs) != len(c.cfg.ClientIDs) {
		return fmt.Errorf("lightsecagg: roster covers %d/%d clients", len(pubs), len(c.cfg.ClientIDs))
	}
	c.roster = pubs
	return nil
}

// OpenEnvelopes unseals the envelopes addressed to this client (origin
// stamped by the server) and stores the carried shares. It must run after
// SealShares (which installs the roster).
func (c *Client) OpenEnvelopes(envs []Envelope) error {
	if c.roster == nil {
		return fmt.Errorf("lightsecagg: OpenEnvelopes before SealShares")
	}
	for _, env := range envs {
		pub, ok := c.roster[env.From]
		if !ok {
			return fmt.Errorf("lightsecagg: envelope from unknown peer %d", env.From)
		}
		key, err := c.session.channelKey(pub)
		if err != nil {
			return err
		}
		pt, err := aead.Open(key, env.Ciphertext, routeAD(c.cfg.Round, env.From, c.id))
		if err != nil {
			return fmt.Errorf("lightsecagg: envelope from %d failed authentication: %w", env.From, err)
		}
		share, err := decodeShareVector(pt)
		if err != nil {
			return fmt.Errorf("lightsecagg: envelope from %d: %w", env.From, err)
		}
		if err := c.ReceiveShare(env.From, share); err != nil {
			return err
		}
	}
	return nil
}

// ReceiveShare stores client from's coded share addressed to this client.
func (c *Client) ReceiveShare(from uint64, share []field.Element) error {
	if len(share) != c.cfg.SubVectorLen() {
		return fmt.Errorf("lightsecagg: share from %d has length %d, want %d",
			from, len(share), c.cfg.SubVectorLen())
	}
	if _, err := c.cfg.rank(from); err != nil {
		return err
	}
	c.received[from] = share
	return nil
}

// MaskedInput returns y_i = x_i + z_i[:d] — the step-2 upload.
func (c *Client) MaskedInput(input []field.Element) ([]field.Element, error) {
	if len(input) != c.cfg.Dim {
		return nil, fmt.Errorf("lightsecagg: input length %d, want %d", len(input), c.cfg.Dim)
	}
	out := make([]field.Element, c.cfg.Dim)
	for i := range out {
		out[i] = field.Add(input[i], c.mask[i])
	}
	if c.cfg.TranscriptDigests {
		c.maskedDigest = transcriptDigest(out)
		c.hasMaskedDigest = true
	}
	return out, nil
}

// MaskedDigest returns the transcript digest of this client's own masked
// upload, with ok=false before MaskedInput or without
// cfg.TranscriptDigests.
func (c *Client) MaskedDigest() ([32]byte, bool) {
	return c.maskedDigest, c.hasMaskedDigest
}

// AggregateShare returns s_j = Σ_{i∈survivors} f_i(α_j), the one-shot
// recovery response of step 3. It fails if any survivor's share is
// missing (the client cannot have received it if that peer never shared).
func (c *Client) AggregateShare(survivors []uint64) ([]field.Element, error) {
	out := make([]field.Element, c.cfg.SubVectorLen())
	for _, id := range survivors {
		share, ok := c.received[id]
		if !ok {
			return nil, fmt.Errorf("lightsecagg: client %d holds no share from survivor %d", c.id, id)
		}
		for t := range out {
			out[t] = field.Add(out[t], share[t])
		}
	}
	return out, nil
}

// Server is the aggregator's round state machine. Mirroring secagg.Server,
// it exposes two equivalent collection surfaces per stage:
//
//   - incremental: AddAdvertise/AddShareBundle/AddMasked/AddAggShare
//     ingest one message on arrival (envelope routing and partial
//     masked-input accumulation happen immediately), and the per-stage
//     Seal* methods close the stage, enforce the threshold, and emit the
//     next broadcast. This is what the streaming round engine drives: by
//     the time a stage's last message arrives, the per-message work is
//     already done and Seal is an O(1) (or O(U)) tail. The server never
//     materializes the n×d masked matrix — arrivals fold into one
//     d-length running sum.
//   - batch: CollectMasked and Reconstruct are thin wrappers kept for
//     white-box tests and non-streaming callers.
//
// Methods must be called in stage order. A Server is not safe for
// concurrent use; the round engine serializes Add* calls in admission
// order (engine.Stage.Apply contract).
type Server struct {
	cfg     Config
	session *ServerSession // may be nil: no cross-round caching

	roster map[uint64][]byte // stage 0: id → channel pub
	outbox map[uint64][]Envelope
	shared map[uint64]struct{} // stage-1 senders

	// Streaming masked-input aggregation: arrivals fold into maskedSum on
	// admission; survivors is fixed by SealMasked.
	maskedSet map[uint64]struct{}
	maskedSum []field.Element
	survivors []uint64
	// maskedDigests records each arrival's transcript digest (only with
	// cfg.TranscriptDigests).
	maskedDigests map[uint64][32]byte

	// One-shot recovery state: shares in admission order.
	aggShares map[uint64][]field.Element
	aggOrder  []uint64
}

// NewServer validates the config (no cross-round session).
func NewServer(cfg Config) (*Server, error) {
	return NewSessionServer(cfg, nil)
}

// NewSessionServer is NewServer with an optional server session: when sess
// is non-nil, the recovery interpolation weights are cached across the
// sub-rounds sharing the session, and a cached roster lets InstallRoster
// skip the advertise stage.
func NewSessionServer(cfg Config, sess *ServerSession) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, session: sess}, nil
}

// AddAdvertise ingests one stage-0 channel-key advertisement on arrival.
func (s *Server) AddAdvertise(m AdvertiseMsg) error {
	if s.roster == nil {
		s.roster = make(map[uint64][]byte, len(s.cfg.ClientIDs))
	}
	if _, err := s.cfg.rank(m.From); err != nil {
		return err
	}
	if _, dup := s.roster[m.From]; dup {
		return fmt.Errorf("lightsecagg: duplicate advertisement from %d", m.From)
	}
	s.roster[m.From] = m.Pub
	return nil
}

// SealAdvertise closes stage 0 and returns the roster broadcast. The
// offline sharing phase needs every sampled client, so a partial roster
// aborts the round.
func (s *Server) SealAdvertise() ([]AdvertiseMsg, error) {
	if len(s.roster) < len(s.cfg.ClientIDs) {
		return nil, fmt.Errorf("lightsecagg: only %d/%d clients advertised keys",
			len(s.roster), len(s.cfg.ClientIDs))
	}
	return s.rosterBroadcast(), nil
}

// InstallRoster seeds the stage-0 state from a cached roster instead of
// collecting advertisements — the session-resumed skippable advertise
// stage. The roster must come from a previously sealed advertise stage
// over the same client set and key generation.
func (s *Server) InstallRoster(roster []AdvertiseMsg) error {
	if s.roster != nil {
		return fmt.Errorf("lightsecagg: advertise stage already started")
	}
	for _, m := range roster {
		if err := s.AddAdvertise(m); err != nil {
			return err
		}
	}
	_, err := s.SealAdvertise()
	return err
}

func (s *Server) rosterBroadcast() []AdvertiseMsg {
	out := make([]AdvertiseMsg, 0, len(s.roster))
	for _, id := range s.cfg.ClientIDs {
		if pub, ok := s.roster[id]; ok {
			out = append(out, AdvertiseMsg{From: id, Pub: pub})
		}
	}
	return out
}

// AddShareBundle routes one sender's sealed envelopes into the recipients'
// outboxes on arrival. The transport-verified origin from overrides
// whatever sender the envelopes claim, so a malicious peer cannot spoof
// (the AEAD associated data additionally binds the route).
func (s *Server) AddShareBundle(from uint64, envs []Envelope) error {
	if _, err := s.cfg.rank(from); err != nil {
		return err
	}
	if s.shared == nil {
		s.shared = make(map[uint64]struct{}, len(s.cfg.ClientIDs))
		s.outbox = make(map[uint64][]Envelope, len(s.cfg.ClientIDs))
	}
	if _, dup := s.shared[from]; dup {
		return fmt.Errorf("lightsecagg: duplicate share bundle from %d", from)
	}
	s.shared[from] = struct{}{}
	for _, env := range envs {
		if _, err := s.cfg.rank(env.To); err != nil {
			return err
		}
		s.outbox[env.To] = append(s.outbox[env.To], Envelope{From: from, To: env.To, Ciphertext: env.Ciphertext})
	}
	return nil
}

// SealShareBundles closes stage 1 and returns each recipient's delivery.
// Like the advertise stage, offline sharing needs every sampled client.
func (s *Server) SealShareBundles() (map[uint64][]Envelope, error) {
	if len(s.shared) < len(s.cfg.ClientIDs) {
		return nil, fmt.Errorf("lightsecagg: only %d/%d clients shared masks",
			len(s.shared), len(s.cfg.ClientIDs))
	}
	return s.outbox, nil
}

// AddMasked folds one masked input into the running partial aggregate on
// arrival — the streaming counterpart of secagg.Server.AddMasked. By seal
// time every admitted vector is already summed, so the stage close costs a
// threshold check plus a survivor sort, and the server holds one d-length
// sum instead of n masked vectors.
func (s *Server) AddMasked(m MaskedMsg) error {
	if _, err := s.cfg.rank(m.From); err != nil {
		return err
	}
	if len(m.Y) != s.cfg.Dim {
		return fmt.Errorf("lightsecagg: masked input length %d, want %d", len(m.Y), s.cfg.Dim)
	}
	if s.maskedSet == nil {
		s.maskedSet = make(map[uint64]struct{}, len(s.cfg.ClientIDs))
		s.maskedSum = make([]field.Element, s.cfg.Dim)
	}
	if _, dup := s.maskedSet[m.From]; dup {
		return fmt.Errorf("lightsecagg: duplicate masked input from %d", m.From)
	}
	s.maskedSet[m.From] = struct{}{}
	if s.cfg.TranscriptDigests {
		if s.maskedDigests == nil {
			s.maskedDigests = make(map[uint64][32]byte, len(s.cfg.ClientIDs))
		}
		s.maskedDigests[m.From] = transcriptDigest(m.Y)
	}
	for i, y := range m.Y {
		s.maskedSum[i] = field.Add(s.maskedSum[i], y)
	}
	return nil
}

// MaskedDigests returns the transcript digests of every masked input
// ingested so far, as id-sorted leaves for transcript.Build. Empty unless
// cfg.TranscriptDigests.
func (s *Server) MaskedDigests() []transcript.InputDigest {
	if len(s.maskedDigests) == 0 {
		return nil
	}
	out := make([]transcript.InputDigest, 0, len(s.maskedDigests))
	for id, d := range s.maskedDigests {
		out = append(out, transcript.InputDigest{ID: id, Digest: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CollectMasked stores a client's masked input (batch wrapper over
// AddMasked, kept for white-box tests and non-streaming callers).
func (s *Server) CollectMasked(id uint64, y []field.Element) error {
	return s.AddMasked(MaskedMsg{From: id, Y: y})
}

// SealMasked closes stage 2: it checks the recovery threshold and returns
// the sorted surviving set for the stage-3 broadcast.
func (s *Server) SealMasked() ([]uint64, error) {
	u := s.cfg.RecoveryThreshold()
	if len(s.maskedSet) < u {
		return nil, fmt.Errorf("lightsecagg: only %d survivors, recovery threshold %d", len(s.maskedSet), u)
	}
	s.survivors = make([]uint64, 0, len(s.maskedSet))
	for id := range s.maskedSet {
		s.survivors = append(s.survivors, id)
	}
	sort.Slice(s.survivors, func(i, j int) bool { return s.survivors[i] < s.survivors[j] })
	return s.survivors, nil
}

// Survivors returns the sorted ids that uploaded masked inputs; recovery
// needs at least U of the *share responses*, checked in SealAggShares.
func (s *Server) Survivors() []uint64 {
	if s.survivors != nil {
		return s.survivors
	}
	out := make([]uint64, 0, len(s.maskedSet))
	for id := range s.maskedSet {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddAggShare ingests one one-shot recovery response on arrival,
// preserving admission order: SealAggShares reconstructs from the first U
// admitted responders, so with the engine's Quorum = U collection the
// stage ends the moment enough shares arrived.
func (s *Server) AddAggShare(m AggShareMsg) error {
	if _, err := s.cfg.rank(m.From); err != nil {
		return err
	}
	if len(m.S) != s.cfg.SubVectorLen() {
		return fmt.Errorf("lightsecagg: aggregate share from %d has length %d, want %d",
			m.From, len(m.S), s.cfg.SubVectorLen())
	}
	if s.aggShares == nil {
		s.aggShares = make(map[uint64][]field.Element, s.cfg.RecoveryThreshold())
	}
	if _, dup := s.aggShares[m.From]; dup {
		return fmt.Errorf("lightsecagg: duplicate aggregate share from %d", m.From)
	}
	s.aggShares[m.From] = m.S
	s.aggOrder = append(s.aggOrder, m.From)
	return nil
}

// SealAggShares performs the one-shot recovery from the first U admitted
// responders: it interpolates Σ_{i∈survivors} z_i at the data points
// (reusing the session's cached interpolation weights when the same
// responder cohort recurs across chunks) and returns Σ x_i = Σ y_i − Σ z_i.
func (s *Server) SealAggShares() ([]field.Element, error) {
	if s.survivors == nil {
		if _, err := s.SealMasked(); err != nil {
			return nil, err
		}
	}
	u := s.cfg.RecoveryThreshold()
	if len(s.aggOrder) < u {
		return nil, fmt.Errorf("lightsecagg: only %d share responses, need %d", len(s.aggOrder), u)
	}
	// The first U admitted responders form the cohort; sorting them makes
	// it canonical (the interpolation is order-independent as long as
	// weights and shares stay aligned), so chunks whose shares merely
	// arrived in a different order hit the session's weight cache.
	responders := append([]uint64(nil), s.aggOrder[:u]...)
	sort.Slice(responders, func(i, j int) bool { return responders[i] < responders[j] })

	ws, err := s.session.recoveryWeights(s.cfg, responders)
	if err != nil {
		return nil, err
	}
	l := s.cfg.SubVectorLen()
	parts := u - s.cfg.PrivacyT
	maskSum := make([]field.Element, parts*l)
	rows := make([][]field.Element, len(responders))
	for i, id := range responders {
		rows[i] = s.aggShares[id]
	}
	for k := 0; k < parts; k++ {
		field.WeightedSumInto(maskSum[k*l:(k+1)*l], ws[k], rows)
	}

	// Σ x = Σ y − Σ z. The masked inputs were already folded on arrival.
	out := make([]field.Element, s.cfg.Dim)
	for i := range out {
		out[i] = field.Sub(s.maskedSum[i], maskSum[i])
	}
	return out, nil
}

// PartialSum is the sealed output of one LightSecAgg aggregator in the
// two-level topology: the recovered field-element sum plus the survivor
// accounting a root combiner folds (the lightsecagg analogue of
// secagg.PartialSum). The substrate has no XNoise removal stage, so there
// is no removed-component accounting; the shard driver reduces Sum into
// the ring before sealing its combine.Partial, exactly as the
// single-aggregator path does after recovery.
type PartialSum struct {
	// Sum is Σ survivors' inputs in GF(2^61−1) (lossless for ring values
	// when n·2^Bits < p, checked by the round driver).
	Sum []field.Element
	// Survivors and Dropped partition the configured roster by whether
	// the client's masked input is in Sum.
	Survivors []uint64
	Dropped   []uint64
}

// FinalizePartial performs the one-shot recovery (SealAggShares) and
// seals this aggregator's partial sum with its survivor accounting.
func (s *Server) FinalizePartial() (PartialSum, error) {
	sum, err := s.SealAggShares()
	if err != nil {
		return PartialSum{}, err
	}
	res := PartialSum{Sum: sum, Survivors: append([]uint64(nil), s.survivors...)}
	in := make(map[uint64]bool, len(s.survivors))
	for _, id := range s.survivors {
		in[id] = true
	}
	for _, id := range s.cfg.ClientIDs {
		if !in[id] {
			res.Dropped = append(res.Dropped, id)
		}
	}
	return res, nil
}

// Reconstruct performs the one-shot recovery from a batch of aggregate
// shares keyed by responder id (batch wrapper over AddAggShare and
// SealAggShares; it feeds shares in ascending id order, so like the
// historical implementation it reconstructs from the U lowest responders).
func (s *Server) Reconstruct(aggShares map[uint64][]field.Element) ([]field.Element, error) {
	u := s.cfg.RecoveryThreshold()
	if len(s.Survivors()) < u {
		return nil, fmt.Errorf("lightsecagg: only %d survivors, recovery threshold %d", len(s.Survivors()), u)
	}
	if len(aggShares) < u {
		return nil, fmt.Errorf("lightsecagg: only %d share responses, need %d", len(aggShares), u)
	}
	responders := make([]uint64, 0, len(aggShares))
	for id := range aggShares {
		responders = append(responders, id)
	}
	sort.Slice(responders, func(i, j int) bool { return responders[i] < responders[j] })
	for _, id := range responders {
		if err := s.AddAggShare(AggShareMsg{From: id, S: aggShares[id]}); err != nil {
			return nil, err
		}
	}
	return s.SealAggShares()
}

// Lift embeds a signed integer into the field (negative values wrap to
// p − |v|), so sums of centered inputs decode with Center.
func Lift(v int64) field.Element {
	if v >= 0 {
		return field.New(uint64(v))
	}
	return field.Neg(field.New(uint64(-v)))
}

// Center maps a field element back to a signed integer in (−p/2, p/2].
func Center(e field.Element) int64 {
	const p = uint64(1)<<61 - 1
	v := e.Uint64()
	if v > p/2 {
		return -int64(p - v)
	}
	return int64(v)
}
