// Package lightsecagg implements LightSecAgg (So et al., MLSys 2022) — the
// strongest of the reduced-round secure-aggregation baselines the paper
// surveys in §2.3.2 (refs [41, 74, 75]). Unlike SecAgg/SecAgg+, which pay
// one secret-sharing reconstruction per dropped client, LightSecAgg
// reconstructs the *aggregate* of the surviving clients' masks in one shot
// via Lagrange-coded mask sharing.
//
// The paper's point about this family — "only handle a semi-honest
// adversary … with their communication cost still being high in FL
// practice" — is reproduced by this package: it offers no malicious-mode
// signatures or consistency checks (semi-honest only), and its per-client
// offline share traffic is n·d/(U−T) field elements, which the ablation
// experiment compares against SecAgg's seed-sized shares.
//
// Protocol sketch (parameters: n clients, privacy threshold T, dropout
// tolerance D, recovery threshold U = n − D > T):
//
//  1. Offline sharing. Client i draws a uniform mask z_i ∈ F^d, splits it
//     into U−T sub-vectors of length L = ⌈d/(U−T)⌉, appends T uniform
//     noise sub-vectors, and encodes the U pieces with a degree-(U−1)
//     polynomial vector f_i: f_i(β_k) = piece k. It sends f_i(α_j) to each
//     client j.
//  2. Masked upload. Client i uploads y_i = x_i + z_i[:d].
//  3. One-shot recovery. The server announces the surviving set U₁
//     (|U₁| ≥ U). Each live client j returns s_j = Σ_{i∈U₁} f_i(α_j). From
//     any U responses the server interpolates Σ_{i∈U₁} f_i at β_1..β_{U−T},
//     i.e. Σ z_i, and computes Σ x_i = Σ y_i − Σ z_i.
//
// Privacy: each f_i carries T uniform noise evaluations, so any T
// colluding clients' shares are jointly independent of z_i (standard
// Lagrange-coding argument); the server sees only masked inputs and
// aggregate shares.
//
// All arithmetic is over GF(2^61−1) (package field); signed model updates
// embed via Lift/Center.
package lightsecagg

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/field"
)

// Config fixes one LightSecAgg round. All parties must agree on it.
type Config struct {
	ClientIDs []uint64 // sampled set, sorted ascending
	PrivacyT  int      // T: colluding clients tolerated
	Dropout   int      // D: dropouts tolerated
	Dim       int      // input vector length d
}

// Validate checks the LightSecAgg feasibility constraints: n − D > T ≥ 1
// would be ideal, but T = 0 (no collusion privacy, masks still hide
// individual updates from the server) is also permitted.
func (c Config) Validate() error {
	n := len(c.ClientIDs)
	switch {
	case n < 2:
		return fmt.Errorf("lightsecagg: need at least 2 clients, got %d", n)
	case c.Dim <= 0:
		return fmt.Errorf("lightsecagg: Dim must be positive, got %d", c.Dim)
	case c.PrivacyT < 0:
		return fmt.Errorf("lightsecagg: PrivacyT %d < 0", c.PrivacyT)
	case c.Dropout < 0:
		return fmt.Errorf("lightsecagg: Dropout %d < 0", c.Dropout)
	case n-c.Dropout <= c.PrivacyT:
		return fmt.Errorf("lightsecagg: recovery threshold U = n−D = %d must exceed T = %d",
			n-c.Dropout, c.PrivacyT)
	}
	for i := 1; i < n; i++ {
		if c.ClientIDs[i] <= c.ClientIDs[i-1] {
			return fmt.Errorf("lightsecagg: ClientIDs must be strictly ascending")
		}
	}
	return nil
}

// RecoveryThreshold returns U = n − D, the number of aggregate shares the
// server needs for one-shot mask recovery.
func (c Config) RecoveryThreshold() int { return len(c.ClientIDs) - c.Dropout }

// SubVectorLen returns L = ⌈d/(U−T)⌉, the length of each coded piece.
func (c Config) SubVectorLen() int {
	parts := c.RecoveryThreshold() - c.PrivacyT
	return (c.Dim + parts - 1) / parts
}

// PaddedDim returns (U−T)·L ≥ d, the mask length before coding.
func (c Config) PaddedDim() int {
	return (c.RecoveryThreshold() - c.PrivacyT) * c.SubVectorLen()
}

// Evaluation points: data/noise pieces live at β_k = k (k = 1..U), client
// shares at α_j = U + 1 + rank(j). All distinct by construction.
func (c Config) beta(k int) field.Element { return field.New(uint64(k)) }

func (c Config) alpha(rank int) field.Element {
	return field.New(uint64(c.RecoveryThreshold() + 1 + rank))
}

func (c Config) rank(id uint64) (int, error) {
	i := sort.Search(len(c.ClientIDs), func(i int) bool { return c.ClientIDs[i] >= id })
	if i == len(c.ClientIDs) || c.ClientIDs[i] != id {
		return 0, fmt.Errorf("lightsecagg: unknown client id %d", id)
	}
	return i, nil
}

// lagrangeWeights returns w_k = Π_{m≠k} (x−β_m)/(β_k−β_m) for k = 1..U at
// the evaluation point x, so f(x) = Σ_k w_k·f(β_k). Interpolation from
// arbitrary abscissas uses lagrangeWeightsAt instead.
func (c Config) lagrangeWeights(x field.Element) ([]field.Element, error) {
	u := c.RecoveryThreshold()
	xs := make([]field.Element, u)
	for k := 0; k < u; k++ {
		xs[k] = c.beta(k + 1)
	}
	return lagrangeWeightsAt(xs, x)
}

// lagrangeWeightsAt returns the Lagrange basis weights for interpolating a
// polynomial of degree < len(xs) at x, given sample abscissas xs.
func lagrangeWeightsAt(xs []field.Element, x field.Element) ([]field.Element, error) {
	n := len(xs)
	ws := make([]field.Element, n)
	for k := 0; k < n; k++ {
		num := field.New(1)
		den := field.New(1)
		for m := 0; m < n; m++ {
			if m == k {
				continue
			}
			num = field.Mul(num, field.Sub(x, xs[m]))
			den = field.Mul(den, field.Sub(xs[k], xs[m]))
		}
		inv, err := field.Inv(den)
		if err != nil {
			return nil, fmt.Errorf("lightsecagg: coincident abscissas: %w", err)
		}
		ws[k] = field.Mul(num, inv)
	}
	return ws, nil
}

// Client is one participant's round state.
type Client struct {
	cfg  Config
	id   uint64
	mask []field.Element // z_i, PaddedDim long

	// pieces are the U coded inputs: U−T mask sub-vectors then T noise
	// sub-vectors, each SubVectorLen long.
	pieces [][]field.Element

	// received accumulates f_i(α_self) from every client i (including
	// self).
	received map[uint64][]field.Element
}

// NewClient draws the mask and coding noise from rand.
func NewClient(cfg Config, id uint64, rand io.Reader) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.rank(id); err != nil {
		return nil, err
	}
	l := cfg.SubVectorLen()
	u := cfg.RecoveryThreshold()
	parts := u - cfg.PrivacyT

	mask := make([]field.Element, cfg.PaddedDim())
	if err := fillUniform(rand, mask); err != nil {
		return nil, err
	}
	pieces := make([][]field.Element, u)
	for k := 0; k < parts; k++ {
		pieces[k] = mask[k*l : (k+1)*l]
	}
	for k := parts; k < u; k++ {
		noise := make([]field.Element, l)
		if err := fillUniform(rand, noise); err != nil {
			return nil, err
		}
		pieces[k] = noise
	}
	return &Client{
		cfg:      cfg,
		id:       id,
		mask:     mask,
		pieces:   pieces,
		received: make(map[uint64][]field.Element, len(cfg.ClientIDs)),
	}, nil
}

func fillUniform(rand io.Reader, out []field.Element) error {
	var buf [8]byte
	for i := range out {
		if _, err := io.ReadFull(rand, buf[:]); err != nil {
			return fmt.Errorf("lightsecagg: reading mask randomness: %w", err)
		}
		out[i] = field.RandomElement(buf)
	}
	return nil
}

// EncodeShares returns the coded mask share f_i(α_j) for every client j
// (including self) — the offline-sharing message of step 1.
func (c *Client) EncodeShares() (map[uint64][]field.Element, error) {
	l := c.cfg.SubVectorLen()
	out := make(map[uint64][]field.Element, len(c.cfg.ClientIDs))
	for rank, id := range c.cfg.ClientIDs {
		ws, err := c.cfg.lagrangeWeights(c.cfg.alpha(rank))
		if err != nil {
			return nil, err
		}
		share := make([]field.Element, l)
		for k, w := range ws {
			piece := c.pieces[k]
			for t := 0; t < l; t++ {
				share[t] = field.Add(share[t], field.Mul(w, piece[t]))
			}
		}
		out[id] = share
	}
	return out, nil
}

// ReceiveShare stores client from's coded share addressed to this client.
func (c *Client) ReceiveShare(from uint64, share []field.Element) error {
	if len(share) != c.cfg.SubVectorLen() {
		return fmt.Errorf("lightsecagg: share from %d has length %d, want %d",
			from, len(share), c.cfg.SubVectorLen())
	}
	if _, err := c.cfg.rank(from); err != nil {
		return err
	}
	c.received[from] = share
	return nil
}

// MaskedInput returns y_i = x_i + z_i[:d] — the step-2 upload.
func (c *Client) MaskedInput(input []field.Element) ([]field.Element, error) {
	if len(input) != c.cfg.Dim {
		return nil, fmt.Errorf("lightsecagg: input length %d, want %d", len(input), c.cfg.Dim)
	}
	out := make([]field.Element, c.cfg.Dim)
	for i := range out {
		out[i] = field.Add(input[i], c.mask[i])
	}
	return out, nil
}

// AggregateShare returns s_j = Σ_{i∈survivors} f_i(α_j), the one-shot
// recovery response of step 3. It fails if any survivor's share is
// missing (the client cannot have received it if that peer never shared).
func (c *Client) AggregateShare(survivors []uint64) ([]field.Element, error) {
	out := make([]field.Element, c.cfg.SubVectorLen())
	for _, id := range survivors {
		share, ok := c.received[id]
		if !ok {
			return nil, fmt.Errorf("lightsecagg: client %d holds no share from survivor %d", c.id, id)
		}
		for t := range out {
			out[t] = field.Add(out[t], share[t])
		}
	}
	return out, nil
}

// Server is the aggregator's round state.
type Server struct {
	cfg    Config
	masked map[uint64][]field.Element
}

// NewServer validates the config.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, masked: make(map[uint64][]field.Element)}, nil
}

// CollectMasked stores a client's masked input.
func (s *Server) CollectMasked(id uint64, y []field.Element) error {
	if _, err := s.cfg.rank(id); err != nil {
		return err
	}
	if len(y) != s.cfg.Dim {
		return fmt.Errorf("lightsecagg: masked input length %d, want %d", len(y), s.cfg.Dim)
	}
	s.masked[id] = y
	return nil
}

// Survivors returns the sorted ids that uploaded masked inputs; recovery
// needs at least U of the *share responses*, checked in Reconstruct.
func (s *Server) Survivors() []uint64 {
	out := make([]uint64, 0, len(s.masked))
	for id := range s.masked {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reconstruct performs the one-shot recovery: given aggregate shares s_j
// from at least U live clients (keyed by responder id), it interpolates
// Σ_{i∈survivors} z_i and returns Σ_{i∈survivors} x_i.
func (s *Server) Reconstruct(aggShares map[uint64][]field.Element) ([]field.Element, error) {
	survivors := s.Survivors()
	u := s.cfg.RecoveryThreshold()
	if len(survivors) < u {
		return nil, fmt.Errorf("lightsecagg: only %d survivors, recovery threshold %d", len(survivors), u)
	}
	if len(aggShares) < u {
		return nil, fmt.Errorf("lightsecagg: only %d share responses, need %d", len(aggShares), u)
	}
	// Deterministically pick the U lowest responder ids.
	responders := make([]uint64, 0, len(aggShares))
	for id := range aggShares {
		responders = append(responders, id)
	}
	sort.Slice(responders, func(i, j int) bool { return responders[i] < responders[j] })
	responders = responders[:u]

	l := s.cfg.SubVectorLen()
	xs := make([]field.Element, u)
	ys := make([][]field.Element, u)
	for i, id := range responders {
		rank, err := s.cfg.rank(id)
		if err != nil {
			return nil, err
		}
		share := aggShares[id]
		if len(share) != l {
			return nil, fmt.Errorf("lightsecagg: aggregate share from %d has length %d, want %d", id, len(share), l)
		}
		xs[i] = s.cfg.alpha(rank)
		ys[i] = share
	}

	// Interpolate the aggregate polynomial at the U−T data points.
	parts := u - s.cfg.PrivacyT
	maskSum := make([]field.Element, parts*l)
	for k := 0; k < parts; k++ {
		ws, err := lagrangeWeightsAt(xs, s.cfg.beta(k+1))
		if err != nil {
			return nil, err
		}
		for i := range xs {
			w := ws[i]
			for t := 0; t < l; t++ {
				idx := k*l + t
				maskSum[idx] = field.Add(maskSum[idx], field.Mul(w, ys[i][t]))
			}
		}
	}

	// Σ x = Σ y − Σ z.
	out := make([]field.Element, s.cfg.Dim)
	for _, id := range survivors {
		y := s.masked[id]
		for i := range out {
			out[i] = field.Add(out[i], y[i])
		}
	}
	for i := range out {
		out[i] = field.Sub(out[i], maskSum[i])
	}
	return out, nil
}

// Lift embeds a signed integer into the field (negative values wrap to
// p − |v|), so sums of centered inputs decode with Center.
func Lift(v int64) field.Element {
	if v >= 0 {
		return field.New(uint64(v))
	}
	return field.Neg(field.New(uint64(-v)))
}

// Center maps a field element back to a signed integer in (−p/2, p/2].
func Center(e field.Element) int64 {
	const p = uint64(1)<<61 - 1
	v := e.Uint64()
	if v > p/2 {
		return -int64(p - v)
	}
	return int64(v)
}

// Run executes one full round in-process with dropout injection. Clients
// in dropsBeforeUpload complete offline sharing but never upload;
// clients in dropsBeforeRecovery upload but never answer the recovery
// request. Returns the sum over clients that uploaded.
func Run(cfg Config, inputs map[uint64][]field.Element,
	dropsBeforeUpload, dropsBeforeRecovery map[uint64]bool, rand io.Reader) ([]field.Element, error) {

	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clients := make(map[uint64]*Client, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		if _, ok := inputs[id]; !ok {
			return nil, fmt.Errorf("lightsecagg: no input for client %d", id)
		}
		c, err := NewClient(cfg, id, rand)
		if err != nil {
			return nil, err
		}
		clients[id] = c
	}

	// Step 1: offline sharing (everyone participates — the §6.1 dropout
	// model has clients vanish after sampling but before upload).
	for _, from := range cfg.ClientIDs {
		shares, err := clients[from].EncodeShares()
		if err != nil {
			return nil, err
		}
		for to, share := range shares {
			if err := clients[to].ReceiveShare(from, share); err != nil {
				return nil, err
			}
		}
	}

	// Step 2: masked upload.
	server, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	for _, id := range cfg.ClientIDs {
		if dropsBeforeUpload[id] {
			continue
		}
		y, err := clients[id].MaskedInput(inputs[id])
		if err != nil {
			return nil, err
		}
		if err := server.CollectMasked(id, y); err != nil {
			return nil, err
		}
	}

	// Step 3: one-shot recovery from clients alive at recovery time.
	survivors := server.Survivors()
	aggShares := make(map[uint64][]field.Element)
	for _, id := range survivors {
		if dropsBeforeRecovery[id] {
			continue
		}
		s, err := clients[id].AggregateShare(survivors)
		if err != nil {
			return nil, err
		}
		aggShares[id] = s
	}
	return server.Reconstruct(aggShares)
}
