package lightsecagg

import (
	"bytes"
	"testing"

	"repro/internal/field"
	"repro/internal/prg"
)

func randElems(s *prg.Stream, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		var b [8]byte
		_, _ = s.Read(b[:])
		out[i] = field.RandomElement(b)
	}
	return out
}

func TestCodecMaskedRoundTrip(t *testing.T) {
	s := rng("codec-masked")
	m := MaskedMsg{From: 42, Y: randElems(s, 257)}
	p, err := encodeMasked(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMasked(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || len(got.Y) != len(m.Y) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range m.Y {
		if got.Y[i] != m.Y[i] {
			t.Fatalf("Y[%d]: %v != %v", i, got.Y[i], m.Y[i])
		}
	}
}

func TestCodecAggShareRoundTrip(t *testing.T) {
	s := rng("codec-agg")
	m := AggShareMsg{From: 7, S: randElems(s, 33)}
	p, err := encodeAggShare(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeAggShare(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || len(got.S) != len(m.S) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range m.S {
		if got.S[i] != m.S[i] {
			t.Fatalf("S[%d]: %v != %v", i, got.S[i], m.S[i])
		}
	}
}

func TestCodecResultRoundTrip(t *testing.T) {
	s := rng("codec-res")
	sum := randElems(s, 100)
	p, err := encodeLSAResult(sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeLSAResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sum) {
		t.Fatalf("length %d, want %d", len(got), len(sum))
	}
	for i := range sum {
		if got[i] != sum[i] {
			t.Fatalf("sum[%d]: %v != %v", i, got[i], sum[i])
		}
	}
}

func TestCodecEnvelopesRoundTrip(t *testing.T) {
	envs := []Envelope{
		{From: 1, To: 2, Ciphertext: []byte{0xAA, 0xBB, 0xCC}},
		{From: 3, To: 1, Ciphertext: nil},
		{From: 2, To: 3, Ciphertext: bytes.Repeat([]byte{0x55}, 300)},
	}
	p, err := encodeEnvelopes(envs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEnvelopes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(envs) {
		t.Fatalf("count %d, want %d", len(got), len(envs))
	}
	for i, e := range envs {
		g := got[i]
		if g.From != e.From || g.To != e.To || !bytes.Equal(g.Ciphertext, e.Ciphertext) {
			t.Fatalf("envelope %d mismatch: %+v vs %+v", i, g, e)
		}
	}
	// Empty list is valid.
	p, err = encodeEnvelopes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err = decodeEnvelopes(p); err != nil || len(got) != 0 {
		t.Fatalf("empty list: %v %v", got, err)
	}
}

func TestCodecShareVectorRoundTrip(t *testing.T) {
	s := rng("codec-share")
	share := randElems(s, 17)
	got, err := decodeShareVector(encodeShareVector(share))
	if err != nil {
		t.Fatal(err)
	}
	for i := range share {
		if got[i] != share[i] {
			t.Fatalf("share[%d]: %v != %v", i, got[i], share[i])
		}
	}
}

// TestCodecMalformed: truncations, lying length prefixes, wrong magic and
// tag bytes, and trailing garbage must all fail loudly, never allocate
// absurdly, and never panic.
func TestCodecMalformed(t *testing.T) {
	s := rng("codec-bad")
	masked, err := encodeMasked(MaskedMsg{From: 9, Y: randElems(s, 32)})
	if err != nil {
		t.Fatal(err)
	}
	envs, err := encodeEnvelopes([]Envelope{{From: 1, To: 2, Ciphertext: []byte{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		p    []byte
		dec  func([]byte) error
	}{
		{"masked-empty", nil, func(p []byte) error { _, err := decodeMasked(p); return err }},
		{"masked-wrong-magic", append([]byte{0x00}, masked[1:]...),
			func(p []byte) error { _, err := decodeMasked(p); return err }},
		{"masked-wrong-tag", append([]byte{lsaMagic, 0x7F}, masked[2:]...),
			func(p []byte) error { _, err := decodeMasked(p); return err }},
		{"masked-truncated", masked[:len(masked)-5],
			func(p []byte) error { _, err := decodeMasked(p); return err }},
		{"masked-trailing", append(append([]byte(nil), masked...), 0xFF),
			func(p []byte) error { _, err := decodeMasked(p); return err }},
		{"masked-as-aggshare", masked,
			func(p []byte) error { _, err := decodeAggShare(p); return err }},
		{"envelopes-truncated", envs[:len(envs)-2],
			func(p []byte) error { _, err := decodeEnvelopes(p); return err }},
		{"envelopes-trailing", append(append([]byte(nil), envs...), 0x00),
			func(p []byte) error { _, err := decodeEnvelopes(p); return err }},
		{"result-empty", []byte{lsaMagic},
			func(p []byte) error { _, err := decodeLSAResult(p); return err }},
		{"share-vector-truncated", encodeShareVector(randElems(s, 8))[:7],
			func(p []byte) error { _, err := decodeShareVector(p); return err }},
	}
	for _, tc := range cases {
		if err := tc.dec(tc.p); err == nil {
			t.Errorf("%s: decode accepted malformed payload", tc.name)
		}
	}

	// Lying length prefixes: a tiny frame declaring 2^20 entries must be
	// rejected before any large allocation.
	lying := []byte{lsaMagic, tagEnvelopes, 0x00, 0x00, 0x10, 0x00} // n = 1<<20
	if _, err := decodeEnvelopes(lying); err == nil {
		t.Error("lying envelope count accepted")
	}
	lyingSlab := []byte{lsaMagic, tagLSAResult, 0xFF, 0xFF, 0xFF, 0x00} // huge n
	if _, err := decodeLSAResult(lyingSlab); err == nil {
		t.Error("lying result slab accepted")
	}
}

// TestCodecSeededFuzz: random mutations of valid payloads either decode
// to something structurally valid or error — no panics, no hangs.
func TestCodecSeededFuzz(t *testing.T) {
	s := rng("codec-fuzz")
	masked, err := encodeMasked(MaskedMsg{From: 3, Y: randElems(s, 64)})
	if err != nil {
		t.Fatal(err)
	}
	envs, err := encodeEnvelopes([]Envelope{
		{From: 1, To: 2, Ciphertext: bytes.Repeat([]byte{9}, 40)},
		{From: 2, To: 1, Ciphertext: bytes.Repeat([]byte{7}, 40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		p := append([]byte(nil), masked...)
		if i%2 == 1 {
			p = append([]byte(nil), envs...)
		}
		// Mutate 1–4 random bytes and maybe truncate.
		for m := 0; m < int(1+s.Uint64n(4)); m++ {
			p[s.Uint64n(uint64(len(p)))] ^= byte(1 + s.Uint64n(255))
		}
		if s.Uint64n(4) == 0 {
			p = p[:s.Uint64n(uint64(len(p)+1))]
		}
		// Must not panic; errors are fine.
		_, _ = decodeMasked(p)
		_, _ = decodeEnvelopes(p)
		_, _ = decodeAggShare(p)
		_, _ = decodeLSAResult(p)
	}
}
