package lightsecagg

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dh"
	"repro/internal/transport"
)

// Versioned binary persistence for client sessions, mirroring
// secagg/persist.go. Serialized: the X25519 channel private scalar, the
// cached pairwise channel secrets, and the cached stage-0 roster. Never
// serialized: masks (LightSecAgg's masks are fresh uniform one-time pads
// drawn per round and consumed immediately — there is nothing to resume),
// coded shares, and the encoding matrix (a geometry-only cache rebuilt on
// first use). The plaintext holds a raw private key; wrap it with
// sessionstore.Store before it touches disk.
const (
	persistMagic   = 0xDA
	persistTag     = 0x4C // 'L': lightsecagg client session
	persistVersion = 1

	maxPersistEntries = 1 << 20
	maxPersistBlob    = 1 << 16
)

// MarshalBinary serializes the session's amortization state.
func (s *Session) MarshalBinary() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.roster) > maxPersistEntries || len(s.channel) > maxPersistEntries {
		return nil, fmt.Errorf("lightsecagg: session exceeds persist caps")
	}
	out := []byte{persistMagic, persistTag, persistVersion}
	priv := s.key.PrivateBytes()
	out = append(out, priv[:]...)

	var cnt [4]byte
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], s.nextRound)
	out = append(out, b[:]...)
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(s.roster)))
	out = append(out, cnt[:]...)
	for _, m := range s.roster {
		binary.LittleEndian.PutUint64(b[:], m.From)
		out = append(out, b[:]...)
		out = transport.AppendBlob(out, m.Pub)
	}

	binary.LittleEndian.PutUint32(cnt[:], uint32(len(s.channel)))
	out = append(out, cnt[:]...)
	keys := make([]string, 0, len(s.channel))
	for k := range s.channel {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding
	for _, k := range keys {
		out = transport.AppendBlob(out, []byte(k))
		sec := s.channel[k]
		out = append(out, sec[:]...)
	}
	return out, nil
}

// UnmarshalSession rebuilds a session from MarshalBinary output. The
// restored session resumes with zero key generations and zero agreements.
func UnmarshalSession(p []byte) (*Session, error) {
	if len(p) < 3 || p[0] != persistMagic || p[1] != persistTag {
		return nil, fmt.Errorf("lightsecagg: not a persisted session")
	}
	if p[2] != persistVersion {
		return nil, fmt.Errorf("lightsecagg: persisted session version %d, want %d", p[2], persistVersion)
	}
	src := p[3:]
	if len(src) < 32+8 {
		return nil, fmt.Errorf("lightsecagg: persisted session truncated")
	}
	var priv [32]byte
	copy(priv[:], src)
	src = src[32:]
	key, err := dh.FromPrivateBytes(priv)
	if err != nil {
		return nil, err
	}
	s := &Session{key: key, channel: make(map[string][dh.SharedSize]byte)}
	s.nextRound = binary.LittleEndian.Uint64(src)
	src = src[8:]

	if len(src) < 4 {
		return nil, fmt.Errorf("lightsecagg: persisted roster header truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if n > maxPersistEntries {
		return nil, fmt.Errorf("lightsecagg: persisted roster of %d entries exceeds cap", n)
	}
	if n > 0 {
		if n > len(src)/(8+2) {
			return nil, fmt.Errorf("lightsecagg: persisted roster of %d entries exceeds payload", n)
		}
		s.roster = make([]AdvertiseMsg, 0, n)
		for i := 0; i < n; i++ {
			if len(src) < 8 {
				return nil, fmt.Errorf("lightsecagg: persisted roster entry %d truncated", i)
			}
			m := AdvertiseMsg{From: binary.LittleEndian.Uint64(src)}
			src = src[8:]
			if m.Pub, src, err = transport.DecodeBlob(src, maxPersistBlob); err != nil {
				return nil, err
			}
			s.roster = append(s.roster, m)
		}
	}

	if len(src) < 4 {
		return nil, fmt.Errorf("lightsecagg: persisted secret section header truncated")
	}
	n = int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if n > maxPersistEntries {
		return nil, fmt.Errorf("lightsecagg: persisted secret section of %d entries exceeds cap", n)
	}
	if n > len(src)/(2+dh.SharedSize) {
		return nil, fmt.Errorf("lightsecagg: persisted secret section of %d entries exceeds payload", n)
	}
	for i := 0; i < n; i++ {
		pub, rest, err := transport.DecodeBlob(src, maxPersistBlob)
		if err != nil {
			return nil, err
		}
		src = rest
		if len(src) < dh.SharedSize {
			return nil, fmt.Errorf("lightsecagg: persisted secret %d truncated", i)
		}
		var sec [dh.SharedSize]byte
		copy(sec[:], src)
		src = src[dh.SharedSize:]
		if _, dup := s.channel[string(pub)]; dup {
			return nil, fmt.Errorf("lightsecagg: duplicate persisted secret entry")
		}
		s.channel[string(pub)] = sec
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("lightsecagg: persisted session: %d trailing bytes", len(src))
	}
	return s, nil
}
