package lightsecagg

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/aead"
	"repro/internal/dh"
	"repro/internal/field"
	"repro/internal/transcript"
)

// Session amortization for LightSecAgg, mirroring secagg.Session. The
// fixed per-round costs this layer removes from repeated rounds (and from
// the m chunks of one pipelined core.RunRound):
//
//   - X25519 channel agreements: sealing/opening coded-share envelopes
//     needs one pairwise secret per peer; historically every round (and
//     every chunk) re-generated the key pair and re-agreed n times per
//     client. The session caches one key pair and the per-peer secrets.
//   - The Lagrange encoding matrix: EncodeShares evaluates U basis
//     weights at each of n points — O(n·U²) field ops per client per
//     round, identical across rounds with the same geometry. Cached once
//     per session.
//   - The recovery interpolation weights: the server's one-shot recovery
//     computes (U−T)·U weights per responder cohort; chunked rounds see
//     the same cohort every chunk. Cached keyed by cohort.
//   - The advertise round trip: a cached roster lets resumed rounds skip
//     stage 0 entirely (both drivers support the skip).
//
// Threat model: unlike SecAgg, LightSecAgg's server never reconstructs any
// client key material — dropout handling interpolates the *aggregate*
// mask, and the per-round masks are fresh uniform one-time pads drawn
// outside the session. Reusing the channel key generation across rounds
// therefore leaks nothing new to the honest-but-curious server; the only
// cost of long-lived channel keys is the generic absence of forward
// secrecy for share confidentiality against endpoint-state compromise
// (see ARCHITECTURE.md for the comparison with the secagg ratchet rules).
type Session struct {
	key *dh.KeyPair // X25519 channel key advertised in stage 0

	mu      sync.Mutex
	channel map[string][dh.SharedSize]byte // peer channel pub → agreed secret
	roster  []AdvertiseMsg                 // cached stage-0 roster (advertise skip)
	enc     *encodingMatrix                // cached Lagrange encoding matrix

	// nextRound counts the rounds this key generation has served — the
	// LightSecAgg face of the handshake's NextRatchet/MarkRatchetUsed
	// surface. Unlike secagg's ratchet it derives no mask material (every
	// mask is a fresh one-time pad); it exists so the handshake's
	// KeyRounds lifetime budget expires LightSecAgg key generations too.
	nextRound uint64
}

// NewSession generates the session's channel key pair with randomness
// from rand.
func NewSession(rand io.Reader) (*Session, error) {
	key, err := dh.Generate(rand)
	if err != nil {
		return nil, err
	}
	return &Session{
		key:     key,
		channel: make(map[string][dh.SharedSize]byte),
	}, nil
}

// PublicBytes returns the session's advertised channel public key.
func (s *Session) PublicBytes() []byte { return s.keyPair().PublicBytes() }

// keyPair returns the current channel key pair under the lock (Rekey swaps
// it, so concurrent readers must not touch the field directly).
func (s *Session) keyPair() *dh.KeyPair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.key
}

// channelKey returns the AEAD key shared with the peer identified by its
// channel public key, agreeing on first use and caching the result. Safe
// for concurrent use — the in-process driver runs clients as goroutines
// over shared sessions.
func (s *Session) channelKey(peerPub []byte) ([aead.KeySize]byte, error) {
	k := string(peerPub)
	s.mu.Lock()
	sec, ok := s.channel[k]
	s.mu.Unlock()
	if ok {
		return sec, nil
	}
	// Agreement runs outside the lock (it is the expensive part and
	// deterministic, so a racing duplicate computes the identical value).
	sec, err := s.keyPair().Agree(peerPub)
	if err != nil {
		return sec, err
	}
	s.mu.Lock()
	s.channel[k] = sec
	s.mu.Unlock()
	return sec, nil
}

// StoreRoster caches a stage-0 roster so a later round on the same
// session can skip the advertise stage. The driver is responsible for
// only storing rosters it obtained through a completed advertise stage.
func (s *Session) StoreRoster(roster []AdvertiseMsg) {
	cp := append([]AdvertiseMsg(nil), roster...)
	s.mu.Lock()
	s.roster = cp
	s.mu.Unlock()
}

// Roster returns the cached stage-0 roster, or nil when none is stored.
func (s *Session) Roster() []AdvertiseMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roster
}

// RosterEntries converts a stage-0 roster into the transcript layer's
// leaf form. LightSecAgg advertises a single channel key, carried as the
// entry's CipherPub with an empty MaskPub — the length-prefixed leaf
// encoding keeps the two shapes from ever aliasing.
func RosterEntries(roster []AdvertiseMsg) []transcript.RosterEntry {
	out := make([]transcript.RosterEntry, len(roster))
	for i, m := range roster {
		out[i] = transcript.RosterEntry{ID: m.From, CipherPub: m.Pub}
	}
	return out
}

// RosterHash returns the canonical digest of a sealed stage-0 roster: the
// Merkle root of the transcript layer's roster subtree
// (transcript.RosterRoot) over every member's (id, channel pub) in roster
// order — the LightSecAgg half of the re-key handshake's shared-state
// check, and the roster commitment a round transcript's inclusion proofs
// verify against (see internal/transcript).
func RosterHash(roster []AdvertiseMsg) [32]byte {
	return transcript.RosterRoot(RosterEntries(roster))
}

// StateHash returns the digest of the roster this session could resume on,
// with ok=false when no completed advertise stage was cached.
func (s *Session) StateHash() ([32]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roster == nil {
		return [32]byte{}, false
	}
	return RosterHash(s.roster), true
}

// Taint, ClearTaint and Tainted exist for handshake symmetry with
// secagg.Session but are deliberately inert: LightSecAgg's server never
// reconstructs client key material (dropout recovery interpolates the
// aggregate mask, and every mask is a fresh one-time pad), so a client
// that vanishes mid-round can still safely resume its channel keys.
func (s *Session) Taint()        {}
func (s *Session) ClearTaint()   {}
func (s *Session) Tainted() bool { return false }

// NextRatchet returns the rounds-served counter of this key generation.
// LightSecAgg has no mask ratchet (cross-round replay of sealed
// envelopes is prevented by the (Round, from, to) AEAD associated data
// instead), but the counter makes the handshake's KeyRounds lifetime
// budget apply to LightSecAgg key generations exactly as it does to
// secagg's.
func (s *Session) NextRatchet() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRound
}

// MarkRatchetUsed advances the rounds-served counter (see NextRatchet).
func (s *Session) MarkRatchetUsed(step uint64) {
	s.mu.Lock()
	if step >= s.nextRound {
		s.nextRound = step + 1
	}
	s.mu.Unlock()
}

// Rekey replaces the session's channel key pair and drops the cached
// secrets, the roster, and the rounds-served counter. The geometry-only
// caches (the Lagrange encoding matrix) survive: they are
// key-independent.
func (s *Session) Rekey(rand io.Reader) error {
	key, err := dh.Generate(rand)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.key = key
	for k := range s.channel {
		delete(s.channel, k)
	}
	s.roster = nil
	s.nextRound = 0
	s.mu.Unlock()
	return nil
}

// RekeyEdges drops the cached channel secrets and roster entries for the
// given divergent peers while keeping this session's own key pair and
// every other edge — the LightSecAgg face of the handshake's partial
// resume. The divergent members re-advertise fresh channel keys in the
// coming round (delivered with the merged roster broadcast) and the
// dropped edges re-agree on first use.
func (s *Session) RekeyEdges(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	drop := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	s.mu.Lock()
	kept := make([]AdvertiseMsg, 0, len(s.roster))
	for _, m := range s.roster {
		if drop[m.From] {
			delete(s.channel, string(m.Pub))
			continue
		}
		kept = append(kept, m)
	}
	// Fresh slice, not in-place: Roster() hands out the cached slice and a
	// concurrent holder must keep seeing the roster it was given.
	s.roster = kept
	s.mu.Unlock()
}

// encodingMatrix holds the Lagrange basis weights w[rank][k] for
// evaluating the share polynomial at every client point α_rank. It
// depends only on the geometry (n, U), not on the client or the round.
type encodingMatrix struct {
	n, u int
	w    [][]field.Element
}

func newEncodingMatrix(cfg Config) (*encodingMatrix, error) {
	n := len(cfg.ClientIDs)
	u := cfg.RecoveryThreshold()
	m := &encodingMatrix{n: n, u: u, w: make([][]field.Element, n)}
	for rank := 0; rank < n; rank++ {
		ws, err := cfg.lagrangeWeights(cfg.alpha(rank))
		if err != nil {
			return nil, err
		}
		m.w[rank] = ws
	}
	return m, nil
}

// matrix returns the encoding matrix for cfg's geometry, computing it on
// first use and caching it for the session's lifetime.
func (s *Session) matrix(cfg Config) (*encodingMatrix, error) {
	n := len(cfg.ClientIDs)
	u := cfg.RecoveryThreshold()
	s.mu.Lock()
	enc := s.enc
	s.mu.Unlock()
	if enc != nil && enc.n == n && enc.u == u {
		return enc, nil
	}
	enc, err := newEncodingMatrix(cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enc = enc
	s.mu.Unlock()
	return enc, nil
}

// ServerSession is the aggregator's cross-round state: the cached stage-0
// roster (advertise skip) and the recovery interpolation weights keyed by
// responder cohort — chunked rounds see the same cohort every chunk, so
// the O(U²·(U−T)) weight computation runs once per cohort instead of once
// per chunk. Safe for concurrent use. All methods are nil-receiver safe,
// so the per-round Server calls them unconditionally.
type ServerSession struct {
	mu        sync.Mutex
	roster    []AdvertiseMsg
	rosterIDs []uint64
	recovery  map[string]recoveryEntry // cohort key → ranks + weights
	nextRound uint64                   // rounds served (see NextRatchet)
}

// recoveryEntry is one cached cohort's interpolation weights together
// with the sorted responder ranks they were computed for — the ranks let
// a later cohort that differs by a single straggler derive its weights
// incrementally instead of recomputing from scratch.
type recoveryEntry struct {
	ranks []int
	ws    [][]field.Element // [parts][u]
}

// NewServerSession returns an empty server session.
func NewServerSession() *ServerSession {
	return &ServerSession{recovery: make(map[string]recoveryEntry)}
}

// StoreRoster caches the sealed stage-0 roster together with the client
// set it was sealed for.
func (s *ServerSession) StoreRoster(roster []AdvertiseMsg, clientIDs []uint64) {
	if s == nil {
		return
	}
	r := append([]AdvertiseMsg(nil), roster...)
	ids := append([]uint64(nil), clientIDs...)
	s.mu.Lock()
	s.roster, s.rosterIDs = r, ids
	s.mu.Unlock()
}

// RosterFor returns the cached roster if it was sealed for exactly the
// given client set, else nil.
func (s *ServerSession) RosterFor(clientIDs []uint64) []AdvertiseMsg {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roster == nil || !sameIDs(s.rosterIDs, clientIDs) {
		return nil
	}
	return s.roster
}

// StateHashFor returns the digest of the roster this session could resume
// a round over clientIDs on, with ok=false when none is cached for that
// client set. The roster need not cover every client: the handshake folds
// the members it misses (MissingMembers) into the divergent subset, and
// they re-advertise under a partial resume — the share exchange still
// needs every sampled client, but their channel keys arrive with the
// merged roster before it runs.
func (s *ServerSession) StateHashFor(clientIDs []uint64) ([32]byte, bool) {
	roster := s.RosterFor(clientIDs)
	if len(roster) == 0 {
		return [32]byte{}, false
	}
	return RosterHash(roster), true
}

// MissingMembers returns the subset of clientIDs the cached roster (for
// exactly that client set) does not cover; a resumed round treats them as
// divergent so they re-advertise. Returns nil when no roster is cached at
// all. nil-receiver safe.
func (s *ServerSession) MissingMembers(clientIDs []uint64) []uint64 {
	roster := s.RosterFor(clientIDs)
	if roster == nil {
		return nil
	}
	have := make(map[uint64]bool, len(roster))
	for _, m := range roster {
		have[m.From] = true
	}
	var out []uint64
	for _, id := range clientIDs {
		if !have[id] {
			out = append(out, id)
		}
	}
	return out
}

// HasTaint reports false always: LightSecAgg's server never reconstructs
// client key material, so dropouts do not poison the key generation (see
// Session.Tainted).
func (s *ServerSession) HasTaint() bool { return false }

// TaintedMembers returns nil always (see HasTaint).
func (s *ServerSession) TaintedMembers() []uint64 { return nil }

// NextRatchet returns the rounds-served counter, mirroring
// Session.NextRatchet: it enforces the handshake's KeyRounds lifetime
// budget, not a mask ratchet.
func (s *ServerSession) NextRatchet() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRound
}

// MarkRatchetUsed advances the rounds-served counter.
func (s *ServerSession) MarkRatchetUsed(step uint64) {
	s.mu.Lock()
	if step >= s.nextRound {
		s.nextRound = step + 1
	}
	s.mu.Unlock()
}

// Rekey drops the cached roster and the rounds-served counter so the
// next round collects a fresh advertise stage. The recovery-weight cache
// survives: it depends only on the geometry and responder ranks, not on
// any key material.
func (s *ServerSession) Rekey() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.roster, s.rosterIDs = nil, nil
	s.nextRound = 0
	s.mu.Unlock()
}

// RekeyEdges drops the roster entries of the given divergent members so
// their fresh advertisements replace them in the merged roster of a
// partial resume. The server holds no per-edge key material on this
// substrate (recovery weights are key-independent), so entries are all
// there is to drop. nil-receiver safe.
func (s *ServerSession) RekeyEdges(ids []uint64) {
	if s == nil || len(ids) == 0 {
		return
	}
	drop := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	s.mu.Lock()
	kept := make([]AdvertiseMsg, 0, len(s.roster))
	for _, m := range s.roster {
		if !drop[m.From] {
			kept = append(kept, m)
		}
	}
	// Fresh slice for the same aliasing reason as Session.RekeyEdges.
	s.roster = kept
	s.mu.Unlock()
}

// cohortKey identifies a recovery cohort by what the weights actually
// depend on: the geometry (U, T) and the responders' *ranks* within the
// client set (α_rank abscissas), in the order the weight columns follow.
// Keying by rank rather than id keeps a session reused across rounds
// with different rosters from serving stale weights — the same ids at
// shifted ranks produce a different key — while rosters that merely
// relabel clients at the same positions legitimately share entries.
func cohortKey(cfg Config, ranks []int) string {
	b := make([]byte, 0, 16+8*len(ranks))
	b = binary.LittleEndian.AppendUint64(b, uint64(cfg.RecoveryThreshold()))
	b = binary.LittleEndian.AppendUint64(b, uint64(cfg.PrivacyT))
	for _, r := range ranks {
		b = binary.LittleEndian.AppendUint64(b, uint64(r))
	}
	return string(b)
}

// recoveryWeights returns ws[k][i] = the Lagrange weight of responder i
// for interpolating the aggregate polynomial at data point β_{k+1}, for
// the given ordered responder cohort. With a session the cohort's weights
// are computed once and reused across the chunks that see it again;
// callers pass responders in canonical (sorted) order so arrival-order
// jitter between chunks still hits the cache and the map stays bounded
// by the number of distinct cohorts.
func (s *ServerSession) recoveryWeights(cfg Config, responders []uint64) ([][]field.Element, error) {
	u := cfg.RecoveryThreshold()
	ranks := make([]int, len(responders))
	for i, id := range responders {
		rank, err := cfg.rank(id)
		if err != nil {
			return nil, err
		}
		ranks[i] = rank
	}
	var key string
	parts := u - cfg.PrivacyT
	if s != nil {
		key = cohortKey(cfg, ranks)
		s.mu.Lock()
		if e, ok := s.recovery[key]; ok {
			s.mu.Unlock()
			return e.ws, nil
		}
		// Miss: look for a cached cohort of the same geometry differing
		// by exactly one straggler — stragglers churn one at a time far
		// more often than cohorts reshuffle wholesale, and the one-swap
		// update is O(parts·u) multiplications with a single batched
		// inversion instead of the O(parts·u²) cold computation.
		var neighbor recoveryEntry
		for _, e := range s.recovery {
			if len(e.ranks) == len(ranks) && len(e.ws) == parts && oneSwapApart(e.ranks, ranks) {
				neighbor = e
				break
			}
		}
		s.mu.Unlock()
		if neighbor.ranks != nil {
			ws, err := swapRecoveryWeights(cfg, neighbor, ranks)
			if err == nil {
				s.mu.Lock()
				s.recovery[key] = recoveryEntry{ranks: ranks, ws: ws}
				s.mu.Unlock()
				return ws, nil
			}
			// Fall through to the cold path on any error (cannot happen
			// with valid geometries, but the full recompute is always safe).
		}
	}
	xs := make([]field.Element, u)
	for i, rank := range ranks {
		xs[i] = cfg.alpha(rank)
	}
	ws := make([][]field.Element, parts)
	for k := 0; k < parts; k++ {
		row, err := lagrangeWeightsAt(xs, cfg.beta(k+1))
		if err != nil {
			return nil, err
		}
		ws[k] = row
	}
	if s != nil {
		s.mu.Lock()
		s.recovery[key] = recoveryEntry{ranks: ranks, ws: ws}
		s.mu.Unlock()
	}
	return ws, nil
}

// oneSwapApart reports whether two equal-length sorted rank cohorts
// differ in exactly one member (one straggler swapped for another).
func oneSwapApart(a, b []int) bool {
	i, j, diff := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i, j = i+1, j+1
		case a[i] < b[j]:
			i++
			diff++
		default:
			j++
			diff++
		}
		if diff > 2 {
			return false
		}
	}
	diff += len(a) - i + len(b) - j
	return diff == 2
}

// swapRecoveryWeights derives the interpolation weights of a cohort that
// differs from the cached one by a single straggler: abscissa α_b (cached
// only) swapped for α_c (new only). For every shared abscissa α_a the
// Lagrange weight at evaluation point x updates by two linear factors,
//
//	w'(a) = w(a) · (x−α_c)(α_a−α_b) / ((x−α_b)(α_a−α_c)),
//
// and only the new member's own weight needs the full product
// Π_{m≠c}(x−α_m) / Π_{m≠c}(α_c−α_m). The (α_a−α_c) inverses are shared
// by every evaluation row, so one field.BatchInv covers all u−1 of them
// plus the per-row (x_k−α_b) and the single denominator of α_c.
func swapRecoveryWeights(cfg Config, old recoveryEntry, newRanks []int) ([][]field.Element, error) {
	// Locate the swapped pair and map each new position to its old one.
	oldPos := make([]int, len(newRanks)) // new position → old position (−1 for c)
	b, c, cPos := -1, -1, -1
	i, j := 0, 0
	for j < len(newRanks) {
		switch {
		case i < len(old.ranks) && old.ranks[i] == newRanks[j]:
			oldPos[j] = i
			i, j = i+1, j+1
		case i < len(old.ranks) && old.ranks[i] < newRanks[j]:
			b = old.ranks[i]
			i++
		default:
			c, cPos = newRanks[j], j
			oldPos[j] = -1
			j++
		}
	}
	if i < len(old.ranks) {
		b = old.ranks[i]
	}
	if b < 0 || c < 0 {
		return nil, fmt.Errorf("lightsecagg: cohorts are not one swap apart")
	}
	alphaB, alphaC := cfg.alpha(b), cfg.alpha(c)
	parts := len(old.ws)

	// One batch inversion for everything: u−1 shared (α_a−α_c), the
	// per-row (x_k−α_b), and α_c's own denominator Π_{m≠c}(α_c−α_m).
	dens := make([]field.Element, 0, len(newRanks)+parts+1)
	denC := field.New(1)
	for p, r := range newRanks {
		if p == cPos {
			continue
		}
		alphaA := cfg.alpha(r)
		dens = append(dens, field.Sub(alphaA, alphaC))
		denC = field.Mul(denC, field.Sub(alphaC, alphaA))
	}
	for k := 0; k < parts; k++ {
		dens = append(dens, field.Sub(cfg.beta(k+1), alphaB))
	}
	dens = append(dens, denC)
	inv, err := field.BatchInv(dens)
	if err != nil {
		return nil, fmt.Errorf("lightsecagg: degenerate straggler swap: %w", err)
	}
	invXB := inv[len(newRanks)-1 : len(inv)-1] // per evaluation row k
	invDenC := inv[len(inv)-1]
	// Row-independent shared-abscissa factors (α_a−α_b)/(α_a−α_c),
	// aligned with the shared new positions in order.
	scaleA := inv[:len(newRanks)-1]
	shared := 0
	for p, r := range newRanks {
		if p == cPos {
			continue
		}
		scaleA[shared] = field.Mul(field.Sub(cfg.alpha(r), alphaB), scaleA[shared])
		shared++
	}

	ws := make([][]field.Element, parts)
	for k := 0; k < parts; k++ {
		x := cfg.beta(k + 1)
		rowFactor := field.Mul(field.Sub(x, alphaC), invXB[k])
		row := make([]field.Element, len(newRanks))
		numC := field.New(1)
		shared = 0
		for p, r := range newRanks {
			if p == cPos {
				continue
			}
			numC = field.Mul(numC, field.Sub(x, cfg.alpha(r)))
			row[p] = field.Mul(old.ws[k][oldPos[p]], field.Mul(rowFactor, scaleA[shared]))
			shared++
		}
		row[cPos] = field.Mul(numC, invDenC)
		ws[k] = row
	}
	return ws, nil
}

// RoundSessions bundles the per-participant sessions a driver shares
// across the chunked sub-rounds of one logical round and across
// consecutive rounds. Unlike secagg.RoundSessions there is no derivation-
// point bookkeeping: every sub-round draws fresh uniform masks, so
// session reuse cannot repeat a mask stream.
type RoundSessions struct {
	Client map[uint64]*Session
	Server *ServerSession
}

// NewRoundSessions creates one client session per id (channel key
// generation happens here, once per id instead of once per chunk) plus an
// empty server session.
func NewRoundSessions(ids []uint64, rand io.Reader) (*RoundSessions, error) {
	rs := &RoundSessions{
		Client: make(map[uint64]*Session, len(ids)),
		Server: NewServerSession(),
	}
	for _, id := range ids {
		s, err := NewSession(rand)
		if err != nil {
			return nil, fmt.Errorf("lightsecagg: session for client %d: %w", id, err)
		}
		rs.Client[id] = s
	}
	return rs, nil
}

// resumable reports whether the sessions can skip the advertise stage for
// cfg: the server session holds a roster sealed for exactly cfg.ClientIDs
// and every member has a live client session whose advertised key matches
// the cached entry. (The offline phase needs every sampled client, so
// there is no partial-roster resume.)
func (rs *RoundSessions) resumable(cfg Config) bool {
	if rs == nil {
		return false
	}
	roster := rs.Server.RosterFor(cfg.ClientIDs)
	if roster == nil || len(roster) != len(cfg.ClientIDs) {
		return false
	}
	for i, m := range roster {
		// Both ascending: rosterBroadcast follows ClientIDs order.
		if m.From != cfg.ClientIDs[i] {
			return false
		}
		sess := rs.Client[m.From]
		if sess == nil || !sameBytes(sess.PublicBytes(), m.Pub) {
			return false
		}
	}
	return true
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
