package lightsecagg

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
	"repro/internal/field"
)

// In-process driver: one full LightSecAgg round with every live client as
// its own goroutine, stage messages streaming into the shared round
// engine exactly as wire frames would, and the server's incremental
// Add*/Seal* methods consuming them on arrival — the same overlapped
// round machinery the SecAgg drivers run on (secagg.Run), replacing the
// historical sequential batch loop. Coded shares travel inside pairwise
// AEAD envelopes in-process too, so the drivers exercise identical crypto
// and the session layer's channel-secret cache is observable in both.

// Stage identifies a point in the client lifecycle, for dropout
// injection and in-process uplink tags.
type Stage int

// The client lifecycle points. A client that drops "before" a stage
// completes every earlier stage and none from that stage on.
const (
	StageAdvertise Stage = iota
	StageShares
	StageMaskedInput
	StageAggShare
	stageCount
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageAdvertise:
		return "advertise"
	case StageShares:
		return "shares"
	case StageMaskedInput:
		return "masked-input"
	case StageAggShare:
		return "agg-share"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// DropSchedule maps a client id to the stage *before* which it vanishes.
// Clients absent from the map never drop. Note that the offline phase
// (advertise + shares) needs every sampled client, so scheduling a drop
// before StageAdvertise or StageShares aborts the round — the supported
// dropout points of the §6.1 model are StageMaskedInput (vanish before
// uploading; excluded from the aggregate) and StageAggShare (vanish
// before answering the one-shot recovery; included in the aggregate).
type DropSchedule map[uint64]Stage

// Participates reports whether the client is still alive at the stage.
func (d DropSchedule) Participates(id uint64, s Stage) bool {
	dropStage, drops := d[id]
	return !drops || s < dropStage
}

func (d DropSchedule) participants(ids []uint64, s Stage) []uint64 {
	out := make([]uint64, 0, len(ids))
	for _, id := range ids {
		if d.Participates(id, s) {
			out = append(out, id)
		}
	}
	return out
}

// lockedReader serializes reads so concurrent client goroutines can share
// one entropy source.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// Run executes one full round in-process with dropout injection. Clients
// in dropsBeforeUpload complete offline sharing but never upload;
// clients in dropsBeforeRecovery upload but never answer the recovery
// request. Returns the sum over clients that uploaded. (Compatibility
// wrapper over RunWithSessions with the historical dropout signature.)
func Run(cfg Config, inputs map[uint64][]field.Element,
	dropsBeforeUpload, dropsBeforeRecovery map[uint64]bool, rand io.Reader) ([]field.Element, error) {

	drops := make(DropSchedule, len(dropsBeforeUpload)+len(dropsBeforeRecovery))
	for id, d := range dropsBeforeUpload {
		if d {
			drops[id] = StageMaskedInput
		}
	}
	for id, d := range dropsBeforeRecovery {
		if d && !(dropsBeforeUpload[id]) {
			drops[id] = StageAggShare
		}
	}
	return RunWithSessions(cfg, inputs, drops, rand, nil)
}

// RunWithSessions is Run with a per-stage drop schedule and an optional
// set of shared sessions. The first round on fresh sessions runs the full
// protocol and populates them (channel secrets, encoding matrix, the
// sealed roster); subsequent rounds on the same sessions skip the
// advertise stage entirely and hit the caches instead of re-running
// X25519 and the Lagrange weight computations. Masks are drawn fresh
// every round regardless — session reuse never repeats a mask stream.
func RunWithSessions(cfg Config, inputs map[uint64][]field.Element,
	drops DropSchedule, rand io.Reader, sess *RoundSessions) ([]field.Element, error) {

	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	resume := sess.resumable(cfg)
	var srvSess *ServerSession
	if sess != nil {
		srvSess = sess.Server
	}
	server, err := NewSessionServer(cfg, srvSess)
	if err != nil {
		return nil, err
	}
	shared := &lockedReader{r: rand}
	clients := make(map[uint64]*Client, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		if _, ok := inputs[id]; !ok {
			return nil, fmt.Errorf("lightsecagg: no input for client %d", id)
		}
		var cs *Session
		if sess != nil {
			cs = sess.Client[id]
		}
		c, err := NewSessionClient(cfg, id, shared, cs)
		if err != nil {
			return nil, err
		}
		clients[id] = c
	}

	// In-process star network: one uplink channel into the engine, one
	// buffered inbox per client. Buffers are sized so no send ever blocks,
	// which lets the round abort at any stage without stranding goroutines.
	uplink := make(chan engine.Msg, len(cfg.ClientIDs)*(int(stageCount)+1))
	inboxes := make(map[uint64]chan any, len(cfg.ClientIDs))
	var wg sync.WaitGroup
	for _, id := range cfg.ClientIDs {
		inbox := make(chan any, int(stageCount)+1)
		inboxes[id] = inbox
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			runInProcClient(clients[id], id, inputs[id], drops, inbox, uplink, resume)
		}(id)
	}
	defer func() {
		for _, inbox := range inboxes {
			close(inbox) // release clients parked on a broadcast that never came
		}
		wg.Wait()
	}()

	ctx := context.Background()
	eng := engine.New(func(ctx context.Context) (engine.Msg, error) {
		select {
		case m := <-uplink:
			return m, nil
		case <-ctx.Done():
			return engine.Msg{}, ctx.Err()
		}
	})
	// collect runs one stage to completion: every expected (live) client
	// deterministically answers or reports an error, so no deadline.
	collect := func(stage Stage, expect []uint64, quorum int, apply func(from uint64, body any) error) error {
		_, err := eng.Collect(ctx, engine.Stage{
			Name:   stage.String(),
			Tag:    int(stage),
			Expect: drops.participants(expect, stage),
			Quorum: quorum,
			Apply: func(from uint64, body any) error {
				if err, ok := body.(error); ok {
					return err // client-side stage failure aborts the round
				}
				return apply(from, body)
			},
		})
		return err
	}
	sendTo := func(ids []uint64, body any) {
		for _, id := range ids {
			inboxes[id] <- body
		}
	}

	// Stage 0: advertise — collected normally, or skipped entirely when
	// the shared sessions hold a roster sealed for this client set.
	var roster []AdvertiseMsg
	if resume {
		roster = sess.Server.RosterFor(cfg.ClientIDs)
		if err := server.InstallRoster(roster); err != nil {
			return nil, err
		}
	} else {
		if err := collect(StageAdvertise, cfg.ClientIDs, 0, func(_ uint64, body any) error {
			return server.AddAdvertise(body.(AdvertiseMsg))
		}); err != nil {
			return nil, err
		}
		if roster, err = server.SealAdvertise(); err != nil {
			return nil, err
		}
		if sess != nil {
			sess.Server.StoreRoster(roster, cfg.ClientIDs)
		}
	}
	sendTo(cfg.ClientIDs, roster)

	// Stage 1: sealed coded shares, routed into per-recipient outboxes on
	// arrival.
	if err := collect(StageShares, cfg.ClientIDs, 0, func(from uint64, body any) error {
		return server.AddShareBundle(from, body.([]Envelope))
	}); err != nil {
		return nil, err
	}
	deliveries, err := server.SealShareBundles()
	if err != nil {
		return nil, err
	}
	for id, envs := range deliveries {
		inboxes[id] <- envs
	}

	// Stage 2: masked uploads fold into the server's running partial
	// aggregate as each client goroutine finishes masking.
	if err := collect(StageMaskedInput, cfg.ClientIDs, 0, func(from uint64, body any) error {
		m := body.(MaskedMsg)
		m.From = from // engine-verified sender wins, as on the wire
		return server.AddMasked(m)
	}); err != nil {
		return nil, err
	}
	survivors, err := server.SealMasked()
	if err != nil {
		return nil, err
	}
	responders := drops.participants(survivors, StageAggShare)
	sendTo(responders, survivors)

	// Stage 3: one-shot recovery — any U aggregate shares complete the
	// stage (engine quorum), then the seal interpolates the mask sum.
	if err := collect(StageAggShare, responders, cfg.RecoveryThreshold(),
		func(from uint64, body any) error {
			m := body.(AggShareMsg)
			m.From = from // engine-verified sender wins, as on the wire
			return server.AddAggShare(m)
		}); err != nil {
		return nil, err
	}
	return server.SealAggShares()
}

// runInProcClient drives one client state machine: it advances when the
// server's broadcast for the next stage arrives on its inbox, emits each
// stage message (or the stage error, which aborts the round) on the
// uplink, and stops at its scheduled drop stage. A closed inbox means the
// round ended without this client. With resume, stage 0 is skipped: the
// cached roster arrives on the inbox like any broadcast.
func runInProcClient(c *Client, id uint64, input []field.Element, drops DropSchedule,
	inbox <-chan any, uplink chan<- engine.Msg, resume bool) {

	send := func(stage Stage, body any) {
		uplink <- engine.Msg{From: id, Stage: int(stage), Body: body}
	}
	step := func(stage Stage, op string, fn func() (any, error)) bool {
		if !drops.Participates(id, stage) {
			return false
		}
		body, err := fn()
		if err != nil {
			send(stage, fmt.Errorf("client %d %s: %w", id, op, err))
			return false
		}
		send(stage, body)
		return true
	}

	if !resume {
		if !step(StageAdvertise, "advertise", func() (any, error) { return c.Advertise(), nil }) {
			return
		}
	}
	b, ok := <-inbox
	if !ok {
		return
	}
	roster := b.([]AdvertiseMsg)
	if !step(StageShares, "seal shares", func() (any, error) { return c.SealShares(roster) }) {
		return
	}
	b, ok = <-inbox
	if !ok {
		return
	}
	delivered := b.([]Envelope)
	if !step(StageMaskedInput, "masked input", func() (any, error) {
		if err := c.OpenEnvelopes(delivered); err != nil {
			return nil, err
		}
		y, err := c.MaskedInput(input)
		if err != nil {
			return nil, err
		}
		return MaskedMsg{From: id, Y: y}, nil
	}) {
		return
	}
	b, ok = <-inbox
	if !ok {
		return
	}
	survivors := b.([]uint64)
	step(StageAggShare, "aggregate share", func() (any, error) {
		s, err := c.AggregateShare(survivors)
		if err != nil {
			return nil, err
		}
		return AggShareMsg{From: id, S: s}, nil
	})
}
