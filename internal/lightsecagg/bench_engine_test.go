package lightsecagg

import (
	"context"
	"crypto/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/transport"
)

// Masked-stage close-tail benchmark, mirroring secagg's
// BenchmarkMaskedStageTail64*: the server-side latency between the last
// masked input becoming available and the surviving set being sealed.
// Streamed (engine path): every arrival already folded into the running
// aggregate, the tail is one AddMasked (one dim-length fold) plus an O(1)
// threshold check and survivor sort. Barriered (the pre-engine shape this
// package used to have): all n dim-length vector adds happen at the
// close. Total CPU is identical — the streamed shape hides it under
// collection time, which is the §4.1 pipelining claim.

// barrieredMaskedClose reproduces the historical close: masked inputs
// were stored on arrival and summed only when the recovery step ran.
type barrieredMaskedClose struct {
	cfg    Config
	masked map[uint64][]field.Element
}

func (s *barrieredMaskedClose) close() ([]uint64, []field.Element) {
	survivors := make([]uint64, 0, len(s.masked))
	for id := range s.masked {
		survivors = append(survivors, id)
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	sum := make([]field.Element, s.cfg.Dim)
	for _, id := range survivors {
		y := s.masked[id]
		for i := range sum {
			sum[i] = field.Add(sum[i], y[i])
		}
	}
	return survivors, sum
}

func benchLSAMaskedStageTail(b *testing.B, dim int, streamed bool) {
	const n = 64
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	cfg := Config{ClientIDs: ids, PrivacyT: 16, Dropout: 16, Dim: dim}
	msgs := make([]MaskedMsg, n)
	for i := range msgs {
		y := make([]field.Element, dim)
		for j := range y {
			y[j] = field.New(uint64(i*j + 1))
		}
		msgs[i] = MaskedMsg{From: ids[i], Y: y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if streamed {
			s, err := NewServer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range msgs[:n-1] {
				if err := s.AddMasked(m); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if err := s.AddMasked(msgs[n-1]); err != nil {
				b.Fatal(err)
			}
			if _, err := s.SealMasked(); err != nil {
				b.Fatal(err)
			}
		} else {
			ref := &barrieredMaskedClose{cfg: cfg, masked: make(map[uint64][]field.Element, n)}
			for _, m := range msgs[:n-1] {
				ref.masked[m.From] = m.Y
			}
			b.StartTimer()
			ref.masked[msgs[n-1].From] = msgs[n-1].Y
			if surv, _ := ref.close(); len(surv) != n {
				b.Fatal("barriered close lost survivors")
			}
		}
	}
}

func BenchmarkLSAMaskedStageTail64Streamed4096(b *testing.B) { benchLSAMaskedStageTail(b, 4096, true) }
func BenchmarkLSAMaskedStageTail64Barriered4096(b *testing.B) {
	benchLSAMaskedStageTail(b, 4096, false)
}
func BenchmarkLSAMaskedStageTail64Streamed65536(b *testing.B) {
	benchLSAMaskedStageTail(b, 65536, true)
}
func BenchmarkLSAMaskedStageTail64Barriered65536(b *testing.B) {
	benchLSAMaskedStageTail(b, 65536, false)
}

// BenchmarkLSAWireRoundEngine64: one full 64-client LightSecAgg wire
// round over the in-memory transport through the engine-backed drivers
// (clients as goroutines + RunWireServer) — the whole-round number the
// engine port is judged by. T = D = 16 (U = 48), the symmetric
// instantiation core.RunRound uses at threshold 48.
func BenchmarkLSAWireRoundEngine64(b *testing.B) {
	const n, dim = 64, 4096
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	cfg := Config{ClientIDs: ids, PrivacyT: 16, Dropout: 16, Dim: dim}
	inputs := make(map[uint64][]field.Element, n)
	for _, id := range ids {
		v := make([]field.Element, dim)
		for i := range v {
			v[i] = Lift(int64(id) + int64(i%7) - 3)
		}
		inputs[id] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewMemoryNetwork(1024)
		conns := make(map[uint64]transport.ClientConn, n)
		for _, id := range ids {
			c, err := net.Connect(id)
			if err != nil {
				b.Fatal(err)
			}
			conns[id] = c
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		var wg sync.WaitGroup
		for _, id := range ids {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = RunWireClient(ctx, WireClientConfig{
					Config: cfg, ID: id, Input: inputs[id], Rand: rand.Reader,
				}, conns[id])
			}()
		}
		if _, err := RunWireServer(ctx, WireServerConfig{
			Config: cfg, StageDeadline: 60 * time.Second,
		}, net.Server()); err != nil {
			b.Fatal(err)
		}
		cancel()
		wg.Wait()
	}
}
