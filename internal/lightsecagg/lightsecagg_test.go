package lightsecagg

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/prg"
)

func testConfig(n, t, d, dim int) Config {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return Config{ClientIDs: ids, PrivacyT: t, Dropout: d, Dim: dim}
}

func liftAll(vs []int64) []field.Element {
	out := make([]field.Element, len(vs))
	for i, v := range vs {
		out[i] = Lift(v)
	}
	return out
}

func rng(label string) *prg.Stream {
	return prg.NewStream(prg.NewSeed([]byte("lsa-test"), []byte(label)))
}

// makeInputs builds deterministic signed inputs and their expected sum
// over an arbitrary surviving subset.
func makeInputs(cfg Config) (map[uint64][]field.Element, func(exclude map[uint64]bool) []int64) {
	raw := make(map[uint64][]int64, len(cfg.ClientIDs))
	inputs := make(map[uint64][]field.Element, len(cfg.ClientIDs))
	for _, id := range cfg.ClientIDs {
		v := make([]int64, cfg.Dim)
		for i := range v {
			v[i] = int64(id)*100 + int64(i) - 50 // mixed signs
		}
		raw[id] = v
		inputs[id] = liftAll(v)
	}
	wantSum := func(exclude map[uint64]bool) []int64 {
		sum := make([]int64, cfg.Dim)
		for _, id := range cfg.ClientIDs {
			if exclude[id] {
				continue
			}
			for i, v := range raw[id] {
				sum[i] += v
			}
		}
		return sum
	}
	return inputs, wantSum
}

func checkSum(t *testing.T, got []field.Element, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if Center(got[i]) != want[i] {
			t.Fatalf("coord %d: got %d, want %d", i, Center(got[i]), want[i])
		}
	}
}

func TestRoundNoDropout(t *testing.T) {
	cfg := testConfig(6, 2, 2, 37) // d not divisible by U−T: padding path
	inputs, wantSum := makeInputs(cfg)
	got, err := Run(cfg, inputs, nil, nil, rng("nodrop"))
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(nil))
}

func TestRoundDropBeforeUpload(t *testing.T) {
	cfg := testConfig(6, 2, 2, 16)
	inputs, wantSum := makeInputs(cfg)
	drops := map[uint64]bool{2: true, 5: true} // exactly D dropouts
	got, err := Run(cfg, inputs, drops, nil, rng("drop2"))
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(drops))
}

// TestRoundDropDuringRecovery: survivors beyond the recovery threshold may
// also vanish before answering the one-shot recovery; the round still
// completes from any U responses.
func TestRoundDropDuringRecovery(t *testing.T) {
	cfg := testConfig(8, 2, 2, 16) // U = 6
	inputs, wantSum := makeInputs(cfg)
	uploadDrops := map[uint64]bool{3: true}   // 7 survivors ≥ U
	recoveryDrops := map[uint64]bool{7: true} // 6 responders = U exactly
	got, err := Run(cfg, inputs, uploadDrops, recoveryDrops, rng("recdrop"))
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, got, wantSum(uploadDrops))
}

func TestRoundAbortsBeyondTolerance(t *testing.T) {
	cfg := testConfig(6, 1, 1, 8) // U = 5
	inputs, _ := makeInputs(cfg)
	drops := map[uint64]bool{1: true, 4: true} // 2 > D = 1
	if _, err := Run(cfg, inputs, drops, nil, rng("over")); err == nil {
		t.Fatal("expected abort when dropouts exceed tolerance")
	}
}

func TestRoundAbortsWhenRecoveryStarved(t *testing.T) {
	cfg := testConfig(6, 1, 1, 8) // U = 5
	inputs, _ := makeInputs(cfg)
	recoveryDrops := map[uint64]bool{1: true, 2: true} // 4 responders < U
	if _, err := Run(cfg, inputs, nil, recoveryDrops, rng("starve")); err == nil {
		t.Fatal("expected abort when recovery responses fall below U")
	}
}

// TestShareConsistency: interpolating a client's own shares at the data
// points recovers its mask — the MDS property the recovery step relies on.
func TestShareConsistency(t *testing.T) {
	cfg := testConfig(5, 1, 1, 12) // U = 4, parts = 3
	c, err := NewClient(cfg, 3, rng("consist"))
	if err != nil {
		t.Fatal(err)
	}
	shares, err := c.EncodeShares()
	if err != nil {
		t.Fatal(err)
	}
	u := cfg.RecoveryThreshold()
	xs := make([]field.Element, u)
	ys := make([][]field.Element, u)
	for i := 0; i < u; i++ {
		xs[i] = cfg.alpha(i)
		ys[i] = shares[cfg.ClientIDs[i]]
	}
	l := cfg.SubVectorLen()
	parts := u - cfg.PrivacyT
	for k := 0; k < parts; k++ {
		ws, err := lagrangeWeightsAt(xs, cfg.beta(k+1))
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < l; tt++ {
			var got field.Element
			for i := range xs {
				got = field.Add(got, field.Mul(ws[i], ys[i][tt]))
			}
			if got != c.mask[k*l+tt] {
				t.Fatalf("piece %d coord %d: interpolated %v, mask %v", k, tt, got, c.mask[k*l+tt])
			}
		}
	}
}

// TestPrivacyTSharesUniform: with privacy threshold T, any T shares are
// uniformly distributed regardless of the mask — checked empirically by
// comparing the first share byte distribution across two clients with
// maximally different masks. This is a smoke check of the Lagrange-coding
// noise padding, not a proof.
func TestPrivacyTSharesUniform(t *testing.T) {
	cfg := testConfig(5, 2, 1, 4) // T = 2 noise pieces
	const trials = 2000
	var lowBitOnes int
	for i := 0; i < trials; i++ {
		c, err := NewClient(cfg, 1, rng(fmt.Sprintf("priv%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		shares, err := c.EncodeShares()
		if err != nil {
			t.Fatal(err)
		}
		if shares[2][0].Uint64()&1 == 1 {
			lowBitOnes++
		}
	}
	frac := float64(lowBitOnes) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("share low bit frequency %.3f, want ≈0.5 (uniformity)", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		testConfig(1, 0, 0, 4),                 // too few clients
		testConfig(4, 0, 0, 0),                 // dim 0
		testConfig(4, -1, 0, 4),                // negative T
		testConfig(4, 0, -1, 4),                // negative D
		testConfig(4, 2, 2, 4),                 // U = 2 ≤ T = 2
		{ClientIDs: []uint64{3, 3, 4}, Dim: 4}, // duplicate ids
		{ClientIDs: []uint64{4, 3, 5}, Dim: 4}, // unsorted ids
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := testConfig(6, 2, 2, 10).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGeometry(t *testing.T) {
	cfg := testConfig(8, 2, 3, 100) // U = 5, parts = 3
	if got := cfg.RecoveryThreshold(); got != 5 {
		t.Errorf("U = %d, want 5", got)
	}
	if got := cfg.SubVectorLen(); got != 34 { // ceil(100/3)
		t.Errorf("L = %d, want 34", got)
	}
	if got := cfg.PaddedDim(); got != 102 {
		t.Errorf("padded = %d, want 102", got)
	}
}

func TestLiftCenterRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		return Center(Lift(int64(v))) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestLiftAdditive: Lift is a homomorphism — sums in ℤ map to sums in F.
func TestLiftAdditive(t *testing.T) {
	f := func(a, b int32) bool {
		lhs := field.Add(Lift(int64(a)), Lift(int64(b)))
		return Center(lhs) == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundRandomDropouts: property test — for random geometry and
// any dropout set within tolerance, the round reproduces the survivors'
// exact sum.
func TestQuickRoundRandomDropouts(t *testing.T) {
	f := func(seed uint64, nQ, tQ, dQ uint8) bool {
		n := int(nQ%6) + 4         // 4..9
		T := int(tQ) % (n / 2)     // keep U > T feasible
		D := int(dQ) % (n - T - 1) // n − D > T
		cfg := testConfig(n, T, D, 9)
		inputs, wantSum := makeInputs(cfg)
		s := prg.NewStream(prg.NewSeed([]byte{byte(seed), byte(seed >> 8), byte(nQ), byte(tQ), byte(dQ)}))
		drops := map[uint64]bool{}
		for _, id := range cfg.ClientIDs {
			if len(drops) < D && s.Uint64n(2) == 1 {
				drops[id] = true
			}
		}
		got, err := Run(cfg, inputs, drops, nil, s)
		if err != nil {
			return false
		}
		want := wantSum(drops)
		for i := range want {
			if Center(got[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClientCost(t *testing.T) {
	cfg := testConfig(100, 10, 10, 1_000_000) // U = 90, parts = 80
	c, err := ClientCost(cfg, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	l := float64(cfg.SubVectorLen())
	if want := 100 * l * 8; c.OfflineShareBytes != want {
		t.Errorf("offline share bytes %.0f, want %.0f", c.OfflineShareBytes, want)
	}
	if want := 1_000_000 * 2.5; c.MaskedUploadBytes != want {
		t.Errorf("masked upload bytes %.0f, want %.0f", c.MaskedUploadBytes, want)
	}
	if c.Total() <= c.MaskedUploadBytes {
		t.Error("total must exceed the masked upload alone")
	}
	// The §2.3.2 claim: share traffic grows linearly with the model.
	cfg2 := cfg
	cfg2.Dim = 2 * cfg.Dim
	c2, err := ClientCost(cfg2, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if c2.OfflineShareBytes < 1.9*c.OfflineShareBytes {
		t.Errorf("share traffic should scale with model size: %v then %v",
			c.OfflineShareBytes, c2.OfflineShareBytes)
	}
	if _, err := ClientCost(cfg, 0); err == nil {
		t.Error("expected error for non-positive weightBytes")
	}
}

func BenchmarkRound8x1024(b *testing.B) {
	cfg := testConfig(8, 2, 2, 1024)
	inputs, _ := makeInputs(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, inputs, nil, nil, rng("bench")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeShares16x4096(b *testing.B) {
	cfg := testConfig(16, 4, 4, 4096)
	c, err := NewClient(cfg, 1, rng("bench-enc"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeShares(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeSharesBlockedMatchesNaive: the cache-blocked deferred-
// reduction encoding is value-identical to the historical per-rank
// Mul/Add loop, across sub-vector lengths that straddle the tile sizes.
func TestEncodeSharesBlockedMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, T, D, dim int }{
		{5, 1, 1, 7},      // L = 3: tiny tail tile
		{8, 2, 2, 1024},   // L = 256
		{10, 3, 3, 4100},  // L straddles weightedSumTile
		{16, 4, 4, 16384}, // L = 2048: multiple encTile blocks
	} {
		cfg := testConfig(tc.n, tc.T, tc.D, tc.dim)
		c, err := NewClient(cfg, 1, rng(fmt.Sprintf("enc-eq-%d-%d", tc.n, tc.dim)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EncodeShares()
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.encodeSharesNaive()
		if err != nil {
			t.Fatal(err)
		}
		for id, w := range want {
			g := got[id]
			if len(g) != len(w) {
				t.Fatalf("n=%d dim=%d: share %d length %d, want %d", tc.n, tc.dim, id, len(g), len(w))
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("n=%d dim=%d: share %d coord %d: blocked %v, naive %v",
						tc.n, tc.dim, id, i, g[i], w[i])
				}
			}
		}
	}
}

// BenchmarkEncodeSharesNaive16x4096 is the before-side of the blocked
// encoding kernel in the pr7 bench ledger.
func BenchmarkEncodeSharesNaive16x4096(b *testing.B) {
	cfg := testConfig(16, 4, 4, 4096)
	c, err := NewClient(cfg, 1, rng("bench-enc"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.encodeSharesNaive(); err != nil {
			b.Fatal(err)
		}
	}
}
