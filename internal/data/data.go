// Package data generates the synthetic federated datasets used in place of
// CIFAR-10/100, FEMNIST, and Reddit (see DESIGN.md §2 for the substitution
// rationale). Each task is a Gaussian-mixture classification problem whose
// class clusters are shared globally, partitioned across clients with the
// same latent-Dirichlet-allocation (LDA) label-skew the paper uses
// (§6.1, concentration 1.0).
package data

import (
	"fmt"
	"math"

	"repro/internal/prg"
	"repro/internal/rng"
)

// Dataset is a flat supervised dataset.
type Dataset struct {
	X          [][]float64
	Y          []int
	NumClasses int
	Dim        int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Federated is a client-partitioned dataset plus a held-out test set.
type Federated struct {
	Clients []Dataset // one shard per client
	Test    Dataset
}

// NumClients returns the number of shards.
func (f *Federated) NumClients() int { return len(f.Clients) }

// SynthConfig parameterizes the generator.
type SynthConfig struct {
	NumClasses   int
	Dim          int // feature dimension
	NumClients   int
	PerClient    int // average examples per client
	TestExamples int
	Alpha        float64 // Dirichlet concentration (1.0 in the paper)
	ClusterStd   float64 // intra-class noise (larger = harder task)
	Seed         prg.Seed
}

// Validate checks the configuration.
func (c SynthConfig) Validate() error {
	switch {
	case c.NumClasses < 2:
		return fmt.Errorf("data: NumClasses %d < 2", c.NumClasses)
	case c.Dim <= 0:
		return fmt.Errorf("data: Dim %d", c.Dim)
	case c.NumClients <= 0:
		return fmt.Errorf("data: NumClients %d", c.NumClients)
	case c.PerClient <= 0:
		return fmt.Errorf("data: PerClient %d", c.PerClient)
	case c.TestExamples <= 0:
		return fmt.Errorf("data: TestExamples %d", c.TestExamples)
	case c.Alpha <= 0:
		return fmt.Errorf("data: Alpha %v", c.Alpha)
	case c.ClusterStd <= 0:
		return fmt.Errorf("data: ClusterStd %v", c.ClusterStd)
	}
	return nil
}

// Generate builds the federated dataset. Class means are unit-norm random
// directions scaled by 2 so classes are separable but not trivially so at
// the configured ClusterStd; every client draws a per-client label
// distribution from Dirichlet(Alpha) over classes (the LDA scheme).
func Generate(cfg SynthConfig) (*Federated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := prg.NewStream(cfg.Seed)
	means := classMeans(s.Fork("means"), cfg.NumClasses, cfg.Dim)

	sample := func(st *prg.Stream, class int) []float64 {
		x := make([]float64, cfg.Dim)
		m := means[class]
		for i := range x {
			x[i] = m[i] + rng.Gaussian(st, 0, cfg.ClusterStd)
		}
		return x
	}

	fed := &Federated{Clients: make([]Dataset, cfg.NumClients)}
	dataStream := s.Fork("client-data")
	labelStream := s.Fork("client-labels")
	for c := 0; c < cfg.NumClients; c++ {
		props := rng.Dirichlet(labelStream, cfg.Alpha, cfg.NumClasses)
		n := cfg.PerClient
		shard := Dataset{NumClasses: cfg.NumClasses, Dim: cfg.Dim,
			X: make([][]float64, 0, n), Y: make([]int, 0, n)}
		for i := 0; i < n; i++ {
			class := sampleCategorical(labelStream, props)
			shard.X = append(shard.X, sample(dataStream, class))
			shard.Y = append(shard.Y, class)
		}
		fed.Clients[c] = shard
	}

	testStream := s.Fork("test")
	fed.Test = Dataset{NumClasses: cfg.NumClasses, Dim: cfg.Dim,
		X: make([][]float64, 0, cfg.TestExamples), Y: make([]int, 0, cfg.TestExamples)}
	for i := 0; i < cfg.TestExamples; i++ {
		class := int(testStream.Uint64n(uint64(cfg.NumClasses)))
		fed.Test.X = append(fed.Test.X, sample(testStream, class))
		fed.Test.Y = append(fed.Test.Y, class)
	}
	return fed, nil
}

// classMeans draws unit-norm class centers scaled by 2.
func classMeans(s *prg.Stream, classes, dim int) [][]float64 {
	means := make([][]float64, classes)
	for c := range means {
		m := make([]float64, dim)
		var norm2 float64
		for i := range m {
			m[i] = rng.Gaussian(s, 0, 1)
			norm2 += m[i] * m[i]
		}
		scale := 2.0
		if norm2 > 0 {
			scale = 2.0 / math.Sqrt(norm2)
		}
		for i := range m {
			m[i] *= scale
		}
		means[c] = m
	}
	return means
}

// sampleCategorical draws an index from a probability vector.
func sampleCategorical(s *prg.Stream, probs []float64) int {
	u := s.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// LabelSkew measures non-IIDness: the average total-variation distance
// between each client's label distribution and the global one. 0 = IID;
// →1 = each client holds a single class.
func LabelSkew(f *Federated) float64 {
	if len(f.Clients) == 0 {
		return 0
	}
	classes := f.Clients[0].NumClasses
	global := make([]float64, classes)
	total := 0
	for _, c := range f.Clients {
		for _, y := range c.Y {
			global[y]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	for i := range global {
		global[i] /= float64(total)
	}
	var avg float64
	for _, c := range f.Clients {
		if len(c.Y) == 0 {
			continue
		}
		local := make([]float64, classes)
		for _, y := range c.Y {
			local[y]++
		}
		var tv float64
		for i := range local {
			local[i] /= float64(len(c.Y))
			d := local[i] - global[i]
			if d < 0 {
				d = -d
			}
			tv += d
		}
		avg += tv / 2
	}
	return avg / float64(len(f.Clients))
}
