package data

import (
	"testing"

	"repro/internal/prg"
)

func baseCfg() SynthConfig {
	return SynthConfig{
		NumClasses:   10,
		Dim:          16,
		NumClients:   20,
		PerClient:    50,
		TestExamples: 200,
		Alpha:        1.0,
		ClusterStd:   1.0,
		Seed:         prg.NewSeed([]byte("data-test")),
	}
}

func TestGenerateShapes(t *testing.T) {
	fed, err := Generate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fed.NumClients() != 20 {
		t.Fatalf("clients %d", fed.NumClients())
	}
	for i, c := range fed.Clients {
		if c.Len() != 50 {
			t.Fatalf("client %d has %d examples", i, c.Len())
		}
		for j, x := range c.X {
			if len(x) != 16 {
				t.Fatalf("client %d example %d dim %d", i, j, len(x))
			}
			if c.Y[j] < 0 || c.Y[j] >= 10 {
				t.Fatalf("label out of range: %d", c.Y[j])
			}
		}
	}
	if fed.Test.Len() != 200 {
		t.Fatalf("test size %d", fed.Test.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Clients[3].Y[7] != b.Clients[3].Y[7] ||
		a.Clients[3].X[7][2] != b.Clients[3].X[7][2] {
		t.Fatal("generation must be deterministic for a fixed seed")
	}
	cfg := baseCfg()
	cfg.Seed = prg.NewSeed([]byte("other"))
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Clients[0].Y {
		if a.Clients[0].Y[i] != c.Clients[0].Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestDirichletSkew(t *testing.T) {
	// α = 0.1 must produce more label skew than α = 100 (→IID).
	mk := func(alpha float64) float64 {
		cfg := baseCfg()
		cfg.Alpha = alpha
		cfg.NumClients = 50
		fed, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return LabelSkew(fed)
	}
	sparse := mk(0.1)
	iid := mk(100)
	if sparse <= iid {
		t.Fatalf("α=0.1 skew %v should exceed α=100 skew %v", sparse, iid)
	}
	if iid > 0.25 {
		t.Errorf("α=100 should be near IID, skew %v", iid)
	}
	if sparse < 0.4 {
		t.Errorf("α=0.1 should be strongly skewed, got %v", sparse)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*SynthConfig){
		func(c *SynthConfig) { c.NumClasses = 1 },
		func(c *SynthConfig) { c.Dim = 0 },
		func(c *SynthConfig) { c.NumClients = 0 },
		func(c *SynthConfig) { c.PerClient = 0 },
		func(c *SynthConfig) { c.TestExamples = 0 },
		func(c *SynthConfig) { c.Alpha = 0 },
		func(c *SynthConfig) { c.ClusterStd = 0 },
	}
	for i, mutate := range bad {
		cfg := baseCfg()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTaskIsLearnable(t *testing.T) {
	// The generated task must be solvable well above chance by a linear
	// model on pooled data, or utility experiments would be meaningless.
	// Verified indirectly: nearest-class-mean on the test set.
	cfg := baseCfg()
	cfg.ClusterStd = 0.8
	fed, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate class means from pooled training data.
	sums := make([][]float64, cfg.NumClasses)
	counts := make([]int, cfg.NumClasses)
	for c := range sums {
		sums[c] = make([]float64, cfg.Dim)
	}
	for _, shard := range fed.Clients {
		for i, x := range shard.X {
			y := shard.Y[i]
			counts[y]++
			for j, v := range x {
				sums[y][j] += v
			}
		}
	}
	for c := range sums {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, x := range fed.Test.X {
		best, bestD := -1, 0.0
		for c := range sums {
			var d float64
			for j, v := range x {
				diff := v - sums[c][j]
				d += diff * diff
			}
			if best == -1 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == fed.Test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(fed.Test.Len())
	if acc < 0.5 { // chance is 0.1
		t.Fatalf("nearest-mean accuracy %v too low; task not learnable", acc)
	}
}
