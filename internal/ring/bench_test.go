package ring

import (
	"fmt"
	"testing"

	"repro/internal/prg"
)

// maskInPlaceScalarRef is the seed implementation of MaskInPlace: one
// buffered 8-byte draw per element. It is kept here as the reference the
// bulk path is benchmarked (and property-tested) against.
func maskInPlaceScalarRef(v Vector, s *prg.Stream, sign int) {
	m := v.Mask()
	if sign == 1 {
		for i := range v.Data {
			v.Data[i] = (v.Data[i] + (s.Uint64() & m)) & m
		}
	} else {
		for i := range v.Data {
			v.Data[i] = (v.Data[i] - (s.Uint64() & m)) & m
		}
	}
}

func benchMask(b *testing.B, dim int, fn func(v Vector, s *prg.Stream)) {
	v := NewVector(20, dim)
	s := prg.NewStream(prg.NewSeed([]byte("mask-bench")))
	b.SetBytes(int64(dim) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(v, s)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(dim), "ns/elem")
}

func BenchmarkMaskInPlace(b *testing.B) {
	for _, dim := range []int{4096, 100000} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			benchMask(b, dim, func(v Vector, s *prg.Stream) {
				if err := v.MaskInPlace(s, 1); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkMaskInPlaceScalarRef(b *testing.B) {
	for _, dim := range []int{4096, 100000} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			benchMask(b, dim, func(v Vector, s *prg.Stream) {
				maskInPlaceScalarRef(v, s, 1)
			})
		})
	}
}

func BenchmarkSum(b *testing.B) {
	const dim = 4096
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vs := make([]Vector, n)
			for i := range vs {
				vs[i] = NewVector(20, dim)
				for j := range vs[i].Data {
					vs[i].Data[j] = uint64(i*j) & vs[i].Mask()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Sum(vs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaskInPlaceSegmented measures intra-stream parallel mask
// expansion at large dim (pr7): one seekable AES-CTR stream split across
// workers via MaskParallelInPlace, against the sequential single-stream
// floor. On a 1-core box workers>1 timeshare; the multi-core matrix in
// the root bench_test.go records the scaling measurements.
func BenchmarkMaskInPlaceSegmented(b *testing.B) {
	const dim = 1 << 16
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dim=%d/workers=%d", dim, workers), func(b *testing.B) {
			benchMask(b, dim, func(v Vector, s *prg.Stream) {
				if err := v.MaskParallelInPlace(s, 1, workers); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}
