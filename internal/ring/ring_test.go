package ring

import (
	"testing"
	"testing/quick"

	"repro/internal/prg"
)

func vecOf(bits uint, vals ...uint64) Vector {
	v := NewVector(bits, len(vals))
	m := v.Mask()
	for i, x := range vals {
		v.Data[i] = x & m
	}
	return v
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b []uint64) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		if len(a) == 0 {
			return true
		}
		va := vecOf(20, a...)
		vb := vecOf(20, b...)
		orig := va.Clone()
		if err := va.AddInPlace(vb); err != nil {
			return false
		}
		if err := va.SubInPlace(vb); err != nil {
			return false
		}
		return Equal(va, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAround(t *testing.T) {
	v := vecOf(8, 250)
	w := vecOf(8, 10)
	if err := v.AddInPlace(w); err != nil {
		t.Fatal(err)
	}
	if v.Data[0] != 4 { // (250+10) mod 256
		t.Fatalf("got %d, want 4", v.Data[0])
	}
}

func TestIncompatibleVectors(t *testing.T) {
	a := NewVector(20, 3)
	b := NewVector(16, 3)
	if err := a.AddInPlace(b); err == nil {
		t.Error("bit width mismatch should error")
	}
	c := NewVector(20, 4)
	if err := a.AddInPlace(c); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestSignedAddSubRoundTrip(t *testing.T) {
	v := vecOf(20, 5, 100, 1<<19)
	noise := []int64{-7, 3, -(1 << 18)}
	orig := v.Clone()
	if err := v.AddSignedInPlace(noise); err != nil {
		t.Fatal(err)
	}
	if err := v.SubSignedInPlace(noise); err != nil {
		t.Fatal(err)
	}
	if !Equal(v, orig) {
		t.Fatal("signed add/sub should round-trip")
	}
}

func TestSignedDimensionCheck(t *testing.T) {
	v := NewVector(20, 3)
	if err := v.AddSignedInPlace([]int64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if err := v.SubSignedInPlace([]int64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestCentered(t *testing.T) {
	v := vecOf(8, 0, 1, 127, 128, 255)
	got := v.Centered()
	want := []int64{0, 1, 127, -128, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Centered()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCenteredSignedRoundTrip(t *testing.T) {
	// Encoding a small signed value into the ring and centering recovers it.
	f := func(x int16) bool {
		v := NewVector(20, 1)
		v.Data[0] = uint64(int64(x)) & v.Mask()
		return v.Centered()[0] == int64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskCancellation(t *testing.T) {
	// p_{u,v} + p_{v,u} = 0: adding with sign +1 then -1 using the same
	// seed restores the vector — the heart of SecAgg masking.
	seed := prg.NewSeed([]byte("pairwise"))
	v := vecOf(20, 11, 22, 33, 44)
	orig := v.Clone()
	if err := v.MaskInPlace(prg.NewStream(seed), 1); err != nil {
		t.Fatal(err)
	}
	if Equal(v, orig) {
		t.Fatal("mask should change the vector")
	}
	if err := v.MaskInPlace(prg.NewStream(seed), -1); err != nil {
		t.Fatal(err)
	}
	if !Equal(v, orig) {
		t.Fatal("opposite-sign masks with same seed must cancel")
	}
}

func TestMaskSignValidation(t *testing.T) {
	v := NewVector(20, 1)
	if err := v.MaskInPlace(prg.NewStream(prg.NewSeed([]byte("x"))), 0); err == nil {
		t.Error("sign 0 should be rejected")
	}
}

func TestSum(t *testing.T) {
	vs := []Vector{vecOf(20, 1, 2), vecOf(20, 10, 20), vecOf(20, 100, 200)}
	got, err := Sum(vs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 111 || got.Data[1] != 222 {
		t.Fatalf("Sum = %v", got.Data)
	}
	if _, err := Sum(nil); err == nil {
		t.Error("Sum of nothing should error")
	}
}

func TestChunkBounds(t *testing.T) {
	cases := []struct {
		dim, m int
		want   [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{10, 1, [][2]int{{0, 10}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // m clamped to dim
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{0, 3, [][2]int{{0, 0}}},
		{5, 0, [][2]int{{0, 5}}}, // m clamped to 1
	}
	for _, c := range cases {
		got := ChunkBounds(c.dim, c.m)
		if len(got) != len(c.want) {
			t.Fatalf("ChunkBounds(%d,%d) = %v, want %v", c.dim, c.m, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ChunkBounds(%d,%d) = %v, want %v", c.dim, c.m, got, c.want)
			}
		}
	}
}

func TestChunkBoundsCoverProperty(t *testing.T) {
	f := func(dim, m uint8) bool {
		d := int(dim)
		bounds := ChunkBounds(d, int(m))
		// Contiguous cover of [0, d).
		pos := 0
		for _, b := range bounds {
			if b[0] != pos || b[1] < b[0] {
				return false
			}
			pos = b[1]
		}
		return pos == d || (d == 0 && pos == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	v := NewVector(20, 103)
	for i := range v.Data {
		v.Data[i] = uint64(i * 7)
	}
	for _, m := range []int{1, 2, 3, 7, 103, 200} {
		chunks := Split(v, m)
		back, err := Concat(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(v, back) {
			t.Fatalf("m=%d: split/concat round trip failed", m)
		}
	}
}

func TestSplitSharesStorage(t *testing.T) {
	v := NewVector(20, 10)
	chunks := Split(v, 2)
	chunks[1].Data[0] = 42
	if v.Data[5] != 42 {
		t.Fatal("chunks should alias the parent vector")
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat(nil); err == nil {
		t.Error("empty concat should error")
	}
	if _, err := Concat([]Vector{NewVector(20, 1), NewVector(16, 1)}); err == nil {
		t.Error("mixed widths should error")
	}
}

func TestChunkwiseAggregationEqualsWhole(t *testing.T) {
	// Σ_i Δ_i == (Σ_i Δ_i,1) ∥ ... ∥ (Σ_i Δ_i,m)  — §4.1 correctness.
	const dim, nClients, m = 57, 5, 4
	clients := make([]Vector, nClients)
	s := prg.NewStream(prg.NewSeed([]byte("agg")))
	for i := range clients {
		clients[i] = NewVector(20, dim)
		for j := range clients[i].Data {
			clients[i].Data[j] = s.Uint64() & clients[i].Mask()
		}
	}
	whole, err := Sum(clients)
	if err != nil {
		t.Fatal(err)
	}
	chunkSums := make([]Vector, m)
	for c := 0; c < m; c++ {
		parts := make([]Vector, nClients)
		for i := range clients {
			parts[i] = Split(clients[i], m)[c]
		}
		chunkSums[c], err = Sum(parts)
		if err != nil {
			t.Fatal(err)
		}
	}
	assembled, err := Concat(chunkSums)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(whole, assembled) {
		t.Fatal("chunk-wise aggregation differs from whole-vector aggregation")
	}
}

func BenchmarkAdd1M(b *testing.B) {
	v := NewVector(20, 1<<20)
	w := NewVector(20, 1<<20)
	b.SetBytes(8 << 20)
	for i := 0; i < b.N; i++ {
		if err := v.AddInPlace(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMask1M(b *testing.B) {
	v := NewVector(20, 1<<20)
	s := prg.NewStream(prg.NewSeed([]byte("bench")))
	b.SetBytes(8 << 20)
	for i := 0; i < b.N; i++ {
		if err := v.MaskInPlace(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMaskInPlaceMatchesScalarRef: the bulk mask expansion is
// element-identical to the seed's scalar Uint64()&mask loop, across odd
// dimensions (scratch-boundary straddling) and both signs, and a +1 then
// -1 round trip restores the original vector.
func TestMaskInPlaceMatchesScalarRef(t *testing.T) {
	dims := []int{0, 1, 7, 63, 512, 2047, 2048, 2049, 5000, 10000}
	for _, dim := range dims {
		for _, sign := range []int{1, -1} {
			seed := prg.NewSeed([]byte("bulk-vs-scalar"), []byte{byte(dim), byte(sign + 2)})
			want := NewVector(20, dim)
			got := NewVector(20, dim)
			for i := 0; i < dim; i++ {
				want.Data[i] = uint64(i*7+1) & want.Mask()
				got.Data[i] = want.Data[i]
			}
			orig := got.Clone()
			maskInPlaceScalarRef(want, prg.NewStream(seed), sign)
			if err := got.MaskInPlace(prg.NewStream(seed), sign); err != nil {
				t.Fatal(err)
			}
			if !Equal(want, got) {
				t.Fatalf("dim %d sign %+d: bulk mask differs from scalar reference", dim, sign)
			}
			if err := got.MaskInPlace(prg.NewStream(seed), -sign); err != nil {
				t.Fatal(err)
			}
			if !Equal(got, orig) {
				t.Fatalf("dim %d sign %+d: +/- mask round trip does not restore vector", dim, sign)
			}
		}
	}
}

// TestMaskInPlaceStreamPosition: bulk masking consumes exactly 8·dim
// stream bytes, so draws after masking coincide with the scalar path.
func TestMaskInPlaceStreamPosition(t *testing.T) {
	seed := prg.NewSeed([]byte("position"))
	const dim = 777
	sBulk := prg.NewStream(seed)
	sScalar := prg.NewStream(seed)
	v := NewVector(20, dim)
	if err := v.MaskInPlace(sBulk, 1); err != nil {
		t.Fatal(err)
	}
	w := NewVector(20, dim)
	maskInPlaceScalarRef(w, sScalar, 1)
	for i := 0; i < 16; i++ {
		if a, b := sBulk.Uint64(), sScalar.Uint64(); a != b {
			t.Fatalf("draw %d after masking: bulk stream at %#x, scalar at %#x", i, a, b)
		}
	}
}

func TestAddSubManyInPlace(t *testing.T) {
	const dim = 4999 // straddles the fused block size
	acc := NewVector(20, dim)
	ref := NewVector(20, dim)
	for i := 0; i < dim; i++ {
		acc.Data[i] = uint64(i) & acc.Mask()
		ref.Data[i] = acc.Data[i]
	}
	os := make([]Vector, 5)
	for k := range os {
		os[k] = NewVector(20, dim)
		for i := 0; i < dim; i++ {
			os[k].Data[i] = uint64(i*13+k*999983) & acc.Mask()
		}
	}
	if err := acc.AddManyInPlace(os); err != nil {
		t.Fatal(err)
	}
	for _, o := range os {
		if err := ref.AddInPlace(o); err != nil {
			t.Fatal(err)
		}
	}
	if !Equal(acc, ref) {
		t.Fatal("AddManyInPlace differs from sequential AddInPlace")
	}
	if err := acc.SubManyInPlace(os); err != nil {
		t.Fatal(err)
	}
	for _, o := range os {
		if err := ref.SubInPlace(o); err != nil {
			t.Fatal(err)
		}
	}
	if !Equal(acc, ref) {
		t.Fatal("SubManyInPlace differs from sequential SubInPlace")
	}
	bad := NewVector(20, dim+1)
	if err := acc.AddManyInPlace([]Vector{bad}); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
}

// TestMaskRangeInPlaceMatchesSequential: expanding a mask as disjoint
// ranges — at every split point of several segment counts — is
// byte-identical to one sequential MaskInPlace, and the base stream is
// never advanced by range expansion.
func TestMaskRangeInPlaceMatchesSequential(t *testing.T) {
	seed := prg.NewSeed([]byte("mask-range"))
	for _, dim := range []int{1, 7, 2048, 2049, 5000} {
		for _, sign := range []int{1, -1} {
			want := NewVector(20, dim)
			for i := range want.Data {
				want.Data[i] = uint64(i*31) & want.Mask()
			}
			got := want.Clone()
			if err := want.MaskInPlace(prg.NewStream(seed), sign); err != nil {
				t.Fatal(err)
			}
			for _, nseg := range []int{1, 2, 3, 5} {
				v := got.Clone()
				s := prg.NewStream(seed)
				for _, b := range ChunkBounds(dim, nseg) {
					if err := v.MaskRangeInPlace(s, sign, b[0], b[1]); err != nil {
						t.Fatal(err)
					}
				}
				if !Equal(v, want) {
					t.Fatalf("dim=%d sign=%d nseg=%d: segmented mask differs from sequential", dim, sign, nseg)
				}
				if s.Offset() != 0 {
					t.Fatalf("MaskRangeInPlace advanced the base stream to %d", s.Offset())
				}
			}
		}
	}
}

// TestMaskRangeInPlaceAfterOffset: ranges are relative to the stream's
// current offset, so a pre-advanced stream still expands the exact bytes a
// sequential expansion from that position would.
func TestMaskRangeInPlaceAfterOffset(t *testing.T) {
	seed := prg.NewSeed([]byte("mask-range-skew"))
	const dim, skew = 3000, 123
	want := NewVector(20, dim)
	got := want.Clone()

	sw := prg.NewStream(seed)
	sw.Fill(make([]byte, skew))
	if err := want.MaskInPlace(sw, 1); err != nil {
		t.Fatal(err)
	}
	sg := prg.NewStream(seed)
	sg.Fill(make([]byte, skew))
	for _, b := range ChunkBounds(dim, 4) {
		if err := got.MaskRangeInPlace(sg, 1, b[0], b[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !Equal(got, want) {
		t.Fatal("offset-relative range expansion differs from sequential")
	}
}

// TestMaskRangeInPlaceBounds: invalid ranges and signs are rejected.
func TestMaskRangeInPlaceBounds(t *testing.T) {
	v := NewVector(20, 10)
	s := prg.NewStream(prg.NewSeed([]byte("bounds")))
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		if err := v.MaskRangeInPlace(s, 1, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) should be rejected", r[0], r[1])
		}
	}
	if err := v.MaskRangeInPlace(s, 2, 0, 5); err == nil {
		t.Error("sign 2 should be rejected")
	}
	if err := v.MaskRangeInPlace(s, 1, 4, 4); err != nil {
		t.Errorf("empty range should be a no-op, got %v", err)
	}
}

// TestMaskParallelInPlaceMatchesSequential: the parallel form equals the
// sequential expansion for every worker count, and leaves the stream at
// the sequential position so subsequent draws agree.
func TestMaskParallelInPlaceMatchesSequential(t *testing.T) {
	seed := prg.NewSeed([]byte("mask-par"))
	const dim = 70000
	want := NewVector(20, dim)
	base := want.Clone()
	sw := prg.NewStream(seed)
	if err := want.MaskInPlace(sw, 1); err != nil {
		t.Fatal(err)
	}
	wantNext := sw.Uint64()
	for _, workers := range []int{1, 2, 3, 8, 64} {
		v := base.Clone()
		s := prg.NewStream(seed)
		if err := v.MaskParallelInPlace(s, 1, workers); err != nil {
			t.Fatal(err)
		}
		if !Equal(v, want) {
			t.Fatalf("workers=%d: parallel mask differs from sequential", workers)
		}
		if got := s.Uint64(); got != wantNext {
			t.Fatalf("workers=%d: stream position diverged after parallel mask (next draw %#x, want %#x)",
				workers, got, wantNext)
		}
	}
}
