// Package ring implements fixed-width modular vector arithmetic in ℤ_{2^b},
// the input space of secure aggregation (paper Fig. 5: "Z_m^R is the space
// from which inputs are sampled").
//
// Model updates are DSkellam-encoded into integer vectors mod 2^b (b = 20 in
// the paper's configuration). Pairwise masks, self masks, and noise all add
// in this ring; wrap-around is intentional and is undone by the DSkellam
// decoder's centering step. The package also provides the chunk
// split/concatenate primitives that Dordis's pipeline uses to divide a
// model update Δ_i into m chunks Δ_i,1..Δ_i,m (§4.1, "Pipelining via Task
// Partitioning").
package ring

import (
	"fmt"
	"sync"

	"repro/internal/prg"
)

// Vector is a ℤ_{2^b} vector together with its bit width. All element values
// are kept reduced mod 2^b.
type Vector struct {
	Bits uint // b, in [1, 63]
	Data []uint64
}

// NewVector returns a zero vector of the given dimension and bit width.
func NewVector(bits uint, dim int) Vector {
	if bits < 1 || bits > 63 {
		panic(fmt.Sprintf("ring: bit width %d out of [1,63]", bits))
	}
	return Vector{Bits: bits, Data: make([]uint64, dim)}
}

// Mask returns the value mask 2^b - 1.
func (v Vector) Mask() uint64 { return (uint64(1) << v.Bits) - 1 }

// Modulus returns 2^b.
func (v Vector) Modulus() uint64 { return uint64(1) << v.Bits }

// Len returns the dimension.
func (v Vector) Len() int { return len(v.Data) }

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := Vector{Bits: v.Bits, Data: make([]uint64, len(v.Data))}
	copy(out.Data, v.Data)
	return out
}

func (v Vector) compatible(o Vector) error {
	if v.Bits != o.Bits {
		return fmt.Errorf("ring: bit width mismatch %d vs %d", v.Bits, o.Bits)
	}
	if len(v.Data) != len(o.Data) {
		return fmt.Errorf("ring: dimension mismatch %d vs %d", len(v.Data), len(o.Data))
	}
	return nil
}

// AddInPlace sets v += o (mod 2^b).
func (v Vector) AddInPlace(o Vector) error {
	if err := v.compatible(o); err != nil {
		return err
	}
	m := v.Mask()
	for i := range v.Data {
		v.Data[i] = (v.Data[i] + o.Data[i]) & m
	}
	return nil
}

// SubInPlace sets v -= o (mod 2^b).
func (v Vector) SubInPlace(o Vector) error {
	if err := v.compatible(o); err != nil {
		return err
	}
	m := v.Mask()
	for i := range v.Data {
		v.Data[i] = (v.Data[i] - o.Data[i]) & m
	}
	return nil
}

// AddSignedInPlace adds a signed integer vector (e.g. discrete noise)
// element-wise mod 2^b.
func (v Vector) AddSignedInPlace(noise []int64) error {
	if len(noise) != len(v.Data) {
		return fmt.Errorf("ring: noise dimension %d vs %d", len(noise), len(v.Data))
	}
	m := v.Mask()
	for i := range v.Data {
		v.Data[i] = (v.Data[i] + uint64(noise[i])) & m
	}
	return nil
}

// SubSignedInPlace subtracts a signed integer vector element-wise mod 2^b.
// This is the server-side XNoise removal primitive.
func (v Vector) SubSignedInPlace(noise []int64) error {
	if len(noise) != len(v.Data) {
		return fmt.Errorf("ring: noise dimension %d vs %d", len(noise), len(v.Data))
	}
	m := v.Mask()
	for i := range v.Data {
		v.Data[i] = (v.Data[i] - uint64(noise[i])) & m
	}
	return nil
}

// Centered returns the elements reinterpreted as signed residues in
// [-2^(b-1), 2^(b-1)): the DSkellam decoder's centering step.
func (v Vector) Centered() []int64 {
	half := uint64(1) << (v.Bits - 1)
	mod := v.Modulus()
	out := make([]int64, len(v.Data))
	for i, x := range v.Data {
		if x >= half {
			out[i] = int64(x) - int64(mod)
		} else {
			out[i] = int64(x)
		}
	}
	return out
}

// maskScratchLen is the per-chunk element count of the bulk masking path:
// 16 KiB of keystream per chunk amortizes the cipher call while keeping
// scratch, the PRG's zero source, and the vector chunk cache-resident.
const maskScratchLen = 2048

// maskScratch pools keystream chunks so concurrent maskers (the parallel
// unmask workers, the client's per-peer expansion) never allocate per call.
var maskScratch = sync.Pool{New: func() any {
	b := make([]uint64, maskScratchLen)
	return &b
}}

// MaskInPlace adds (sign=+1) or subtracts (sign=-1) a PRG-expanded mask:
// the SecAgg pairwise mask p_{u,v} = γ_{u,v}·PRG(s_{u,v}) or the self mask
// p_u = PRG(b_u). The stream is consumed for exactly Len() 8-byte draws, so
// client and server expansions coincide; the bulk expansion below is
// element-identical to the seed's scalar Uint64()&mask loop.
func (v Vector) MaskInPlace(s *prg.Stream, sign int) error {
	if sign != 1 && sign != -1 {
		return fmt.Errorf("ring: mask sign must be ±1, got %d", sign)
	}
	maskSpan(v.Data, v.Mask(), s, sign)
	return nil
}

// MaskRangeInPlace applies the mask expansion of MaskInPlace to elements
// [lo, hi) only, reading the exact keystream words a full sequential
// expansion would read for that range: element i consumes stream bytes
// [8i, 8i+8) relative to the receiver stream's current offset. The
// receiver stream is NOT advanced — the range is expanded through an
// independent prg.Stream.At cursor — so disjoint ranges of one mask can be
// expanded concurrently from different goroutines and the concatenation is
// byte-identical to one sequential MaskInPlace (golden-tested at every
// segment boundary in ring_test.go). This is the intra-stream parallelism
// primitive behind secagg's segmented mask fan-out.
func (v Vector) MaskRangeInPlace(s *prg.Stream, sign int, lo, hi int) error {
	if sign != 1 && sign != -1 {
		return fmt.Errorf("ring: mask sign must be ±1, got %d", sign)
	}
	if lo < 0 || hi > len(v.Data) || lo > hi {
		return fmt.Errorf("ring: mask range [%d,%d) out of [0,%d)", lo, hi, len(v.Data))
	}
	if lo == hi {
		return nil
	}
	c := s.At(s.Offset() + 8*uint64(lo))
	maskSpan(v.Data[lo:hi], v.Mask(), c, sign)
	return nil
}

// maskSpan is the shared bulk expansion loop of MaskInPlace and
// MaskRangeInPlace: data[i] ±= keystream word i (mod 2^b), in
// scratch-pooled chunks.
func maskSpan(data []uint64, m uint64, s *prg.Stream, sign int) {
	sp := maskScratch.Get().(*[]uint64)
	full := *sp
	for len(data) > 0 {
		n := len(data)
		if n > maskScratchLen {
			n = maskScratchLen
		}
		ks := full[:n]
		s.FillUint64(ks)
		chunk := data[:n:n]
		// (x ± (k&m)) & m == (x ± k) & m: carries/borrows propagate upward
		// only, so the raw keystream word adds without pre-masking.
		if sign == 1 {
			i := 0
			for ; i+4 <= len(chunk); i += 4 {
				chunk[i] = (chunk[i] + ks[i]) & m
				chunk[i+1] = (chunk[i+1] + ks[i+1]) & m
				chunk[i+2] = (chunk[i+2] + ks[i+2]) & m
				chunk[i+3] = (chunk[i+3] + ks[i+3]) & m
			}
			for ; i < len(chunk); i++ {
				chunk[i] = (chunk[i] + ks[i]) & m
			}
		} else {
			i := 0
			for ; i+4 <= len(chunk); i += 4 {
				chunk[i] = (chunk[i] - ks[i]) & m
				chunk[i+1] = (chunk[i+1] - ks[i+1]) & m
				chunk[i+2] = (chunk[i+2] - ks[i+2]) & m
				chunk[i+3] = (chunk[i+3] - ks[i+3]) & m
			}
			for ; i < len(chunk); i++ {
				chunk[i] = (chunk[i] - ks[i]) & m
			}
		}
		data = data[n:]
	}
	maskScratch.Put(sp)
}

// MaskParallelInPlace is MaskInPlace with the single stream split into up
// to `workers` independently expanded segments (ChunkBounds geometry) — the
// standalone form of the segmented fan-out, used by benchmarks and by
// callers that expand one large mask with idle cores available. The result
// is byte-identical to MaskInPlace; the receiver stream is advanced past
// the full expansion so subsequent draws continue as if it ran
// sequentially.
func (v Vector) MaskParallelInPlace(s *prg.Stream, sign int, workers int) error {
	if sign != 1 && sign != -1 {
		return fmt.Errorf("ring: mask sign must be ±1, got %d", sign)
	}
	if workers > len(v.Data)/maskScratchLen {
		workers = len(v.Data) / maskScratchLen
	}
	if workers <= 1 {
		return v.MaskInPlace(s, sign)
	}
	var wg sync.WaitGroup
	for _, b := range ChunkBounds(len(v.Data), workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			v.MaskRangeInPlace(s, sign, lo, hi) // bounds pre-validated
		}(b[0], b[1])
	}
	wg.Wait()
	s.Seek(s.Offset() + 8*uint64(len(v.Data)))
	return nil
}

// AddManyInPlace sets v += Σ os (mod 2^b) in cache-friendly blocks: each
// block of v is kept hot while every addend streams through it once, so the
// accumulator's cache lines are touched once per block rather than once per
// vector.
func (v Vector) AddManyInPlace(os []Vector) error {
	return v.fusedManyInPlace(os, 1)
}

// SubManyInPlace sets v -= Σ os (mod 2^b), the removal-side dual of
// AddManyInPlace.
func (v Vector) SubManyInPlace(os []Vector) error {
	return v.fusedManyInPlace(os, -1)
}

// fusedBlock is the accumulator block size of the fused many-vector loops:
// 16 KiB of accumulator stays L1-resident across all addend passes.
const fusedBlock = 2048

func (v Vector) fusedManyInPlace(os []Vector, sign int) error {
	for _, o := range os {
		if err := v.compatible(o); err != nil {
			return err
		}
	}
	m := v.Mask()
	for start := 0; start < len(v.Data); start += fusedBlock {
		end := start + fusedBlock
		if end > len(v.Data) {
			end = len(v.Data)
		}
		acc := v.Data[start:end]
		for _, o := range os {
			src := o.Data[start:end]
			if sign == 1 {
				for i := range acc {
					acc[i] = (acc[i] + src[i]) & m
				}
			} else {
				for i := range acc {
					acc[i] = (acc[i] - src[i]) & m
				}
			}
		}
	}
	return nil
}

// Sum aggregates vectors element-wise mod 2^b into a fresh vector. At least
// one vector is required (it fixes the width and dimension).
func Sum(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return Vector{}, fmt.Errorf("ring: Sum of zero vectors")
	}
	acc := vs[0].Clone()
	if err := acc.AddManyInPlace(vs[1:]); err != nil {
		return Vector{}, err
	}
	return acc, nil
}

// ChunkBounds returns the element ranges [start,end) for splitting a vector
// of dimension dim into m nearly equal chunks (the first dim%m chunks get
// one extra element). It is the single source of truth for chunk geometry
// so that clients and server partition identically.
func ChunkBounds(dim, m int) [][2]int {
	if m < 1 {
		m = 1
	}
	if m > dim && dim > 0 {
		m = dim
	}
	if dim == 0 {
		return [][2]int{{0, 0}}
	}
	base := dim / m
	extra := dim % m
	bounds := make([][2]int, m)
	start := 0
	for i := 0; i < m; i++ {
		size := base
		if i < extra {
			size++
		}
		bounds[i] = [2]int{start, start + size}
		start += size
	}
	return bounds
}

// Split divides v into m chunks per ChunkBounds. Chunks share the
// underlying storage (a chunk write is visible in v), which is what the
// pipeline wants: chunk aggregation assembles the final vector in place.
func Split(v Vector, m int) []Vector {
	bounds := ChunkBounds(v.Len(), m)
	out := make([]Vector, len(bounds))
	for i, b := range bounds {
		out[i] = Vector{Bits: v.Bits, Data: v.Data[b[0]:b[1]]}
	}
	return out
}

// Concat assembles chunks back into one vector (copying).
func Concat(chunks []Vector) (Vector, error) {
	if len(chunks) == 0 {
		return Vector{}, fmt.Errorf("ring: Concat of zero chunks")
	}
	bits := chunks[0].Bits
	total := 0
	for _, c := range chunks {
		if c.Bits != bits {
			return Vector{}, fmt.Errorf("ring: Concat bit width mismatch")
		}
		total += c.Len()
	}
	out := NewVector(bits, total)
	pos := 0
	for _, c := range chunks {
		copy(out.Data[pos:], c.Data)
		pos += c.Len()
	}
	return out, nil
}

// Equal reports whether two vectors have identical width and contents.
func Equal(a, b Vector) bool {
	if a.Bits != b.Bits || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
