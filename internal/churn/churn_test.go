package churn

import (
	"reflect"
	"testing"
)

// TestChurnTraceDeterministic pins the generator contract the chaos tests
// rely on: the trace is a pure function of the config, events stay within
// the configured rounds and client set, and no client churns twice in the
// same round.
func TestChurnTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{
		Seed:    42,
		Clients: []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Rounds:  6, RestartsPerRound: 1, DropsPerRound: 1,
	}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different traces")
	}
	if want := int(cfg.Rounds-1) * 2; len(a) != want {
		t.Fatalf("trace has %d events, want %d", len(a), want)
	}

	clients := make(map[uint64]bool)
	for _, id := range cfg.Clients {
		clients[id] = true
	}
	perRound := make(map[uint64]map[uint64]bool)
	for _, e := range a {
		if e.Round < 2 || e.Round > cfg.Rounds {
			t.Fatalf("event %+v outside rounds 2..%d", e, cfg.Rounds)
		}
		if !clients[e.Client] {
			t.Fatalf("event %+v names an unknown client", e)
		}
		if perRound[e.Round] == nil {
			perRound[e.Round] = make(map[uint64]bool)
		}
		if perRound[e.Round][e.Client] {
			t.Fatalf("client %d churned twice in round %d", e.Client, e.Round)
		}
		perRound[e.Round][e.Client] = true
	}

	other := cfg
	other.Seed = 43
	if reflect.DeepEqual(a, Generate(other)) {
		t.Fatal("different seeds generated identical traces")
	}

	if got := ByRound(a); len(got[2]) != 2 {
		t.Fatalf("ByRound[2] = %v, want 2 events", got[2])
	}
}
