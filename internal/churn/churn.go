// Package churn generates deterministic churn traces: seeded schedules
// of client restarts and mid-round drops over a multi-round run. The
// chaos tests in internal/core drive multi-round wire deployments from
// these traces and pin the continuity guarantees — per-edge re-keys stay
// proportional to churn (dh.Agree counts of order the churned client's
// degree, not n·k), and a killed-and-redialed client rejoins without
// aborting the round. Same seed, same trace: failures replay exactly.
package churn

import (
	mrand "math/rand"
)

// Kind classifies one churn event.
type Kind int

const (
	// Restart kills a client between rounds: its in-memory session state
	// is lost and it re-dials with a fresh session before the next
	// handshake, landing it in the divergent subset (per-edge re-key).
	Restart Kind = iota
	// Drop makes a client vanish mid-round, before its masked upload:
	// the server reconstructs its mask key (tainting its edges) and the
	// client re-dials before the next round.
	Drop
)

func (k Kind) String() string {
	switch k {
	case Restart:
		return "restart"
	case Drop:
		return "drop"
	default:
		return "unknown"
	}
}

// Event is one scheduled churn action.
type Event struct {
	// Round is the round the event applies to: a Restart happens between
	// the previous round and this round's handshake; a Drop happens
	// inside this round.
	Round  uint64
	Client uint64
	Kind   Kind
}

// TraceConfig parameterizes Generate.
type TraceConfig struct {
	Seed    int64
	Clients []uint64
	// Rounds is the number of protocol rounds. Events are scheduled on
	// rounds 2..Rounds — round 1 bootstraps the key generation.
	Rounds uint64
	// RestartsPerRound and DropsPerRound clients are chosen uniformly
	// without replacement for every event round.
	RestartsPerRound int
	DropsPerRound    int
}

// Generate produces the trace, ordered by round. The schedule is a pure
// function of the config: the same seed and parameters always yield the
// same events, so a failing chaos run replays exactly.
func Generate(cfg TraceConfig) []Event {
	rng := mrand.New(mrand.NewSource(cfg.Seed))
	var out []Event
	for r := uint64(2); r <= cfg.Rounds; r++ {
		restarts := min(cfg.RestartsPerRound, len(cfg.Clients))
		drops := min(cfg.DropsPerRound, len(cfg.Clients)-restarts)
		perm := rng.Perm(len(cfg.Clients))
		for i := 0; i < restarts+drops; i++ {
			kind := Restart
			if i >= restarts {
				kind = Drop
			}
			out = append(out, Event{Round: r, Client: cfg.Clients[perm[i]], Kind: kind})
		}
	}
	return out
}

// ByRound indexes a trace by round for per-round replay.
func ByRound(trace []Event) map[uint64][]Event {
	out := make(map[uint64][]Event)
	for _, e := range trace {
		out[e.Round] = append(out[e.Round], e)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
