package secaggplus

import (
	"crypto/rand"
	"math"
	"testing"

	"repro/internal/ring"
	"repro/internal/secagg"
	"repro/internal/xnoise"
)

func ids(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

func TestCirculantGraphProperties(t *testing.T) {
	g, err := NewCirculantGraph(ids(20), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids(20) {
		nbrs := g.Neighbors(id)
		if len(nbrs) != 6 {
			t.Fatalf("node %d degree %d, want 6", id, len(nbrs))
		}
		for _, v := range nbrs {
			if v == id {
				t.Fatalf("node %d is its own neighbor", id)
			}
			// Symmetry.
			found := false
			for _, back := range g.Neighbors(v) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge %d→%d", id, v)
			}
		}
	}
}

func TestCirculantGraphConnected(t *testing.T) {
	g, err := NewCirculantGraph(ids(31), 4)
	if err != nil {
		t.Fatal(err)
	}
	visited := map[uint64]bool{1: true}
	frontier := []uint64{1}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, v := range g.Neighbors(next) {
			if !visited[v] {
				visited[v] = true
				frontier = append(frontier, v)
			}
		}
	}
	if len(visited) != 31 {
		t.Fatalf("graph not connected: reached %d of 31", len(visited))
	}
}

func TestCirculantGraphClamping(t *testing.T) {
	// Odd degree rounds up; degree ≥ n clamps to complete.
	g, err := NewCirculantGraph(ids(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree() != 4 {
		t.Errorf("odd degree should round to 4, got %d", g.Degree())
	}
	g2, err := NewCirculantGraph(ids(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Degree() != 4 {
		t.Errorf("degree should clamp to n-1=4, got %d", g2.Degree())
	}
	if len(g2.Neighbors(3)) != 4 {
		t.Errorf("complete neighborhoods expected")
	}
}

func TestCirculantGraphErrors(t *testing.T) {
	if _, err := NewCirculantGraph(ids(1), 2); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := NewCirculantGraph(ids(5), 1); err == nil {
		t.Error("degree 1 should error")
	}
	if _, err := NewCirculantGraph([]uint64{1, 1, 2}, 2); err == nil {
		t.Error("duplicate ids should error")
	}
	g, _ := NewCirculantGraph(ids(5), 2)
	if g.Neighbors(99) != nil {
		t.Error("unknown node should have no neighbors")
	}
}

func TestRecommendedDegreeGrowsLogarithmically(t *testing.T) {
	d100 := RecommendedDegree(100)
	d10000 := RecommendedDegree(10000)
	if d10000 <= d100 {
		t.Errorf("degree should grow with n: %d vs %d", d100, d10000)
	}
	// log₂(10000)/log₂(100) = 2, so roughly doubles, not ×100.
	if d10000 > 3*d100 {
		t.Errorf("degree growth not logarithmic: %d vs %d", d100, d10000)
	}
	if RecommendedDegree(2) != 2 {
		t.Errorf("tiny n should floor at 2")
	}
	if d := RecommendedDegree(16); d%2 != 0 {
		t.Errorf("degree should be even, got %d", d)
	}
}

func TestSecAggPlusRoundNoDropout(t *testing.T) {
	base := secagg.Config{
		Round: 3, ClientIDs: ids(12), Threshold: 5, Bits: 20, Dim: 32,
	}
	cfg, err := NewConfig(base, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	inputs := make(map[uint64]ring.Vector)
	want := ring.NewVector(cfg.Bits, cfg.Dim)
	for _, id := range cfg.ClientIDs {
		v := ring.NewVector(cfg.Bits, cfg.Dim)
		for j := range v.Data {
			v.Data[j] = (id*31 + uint64(j)) & v.Mask()
		}
		inputs[id] = v
		want.AddInPlace(v)
	}
	rr, err := secagg.Run(cfg, inputs, nil, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got := ring.Vector{Bits: cfg.Bits, Data: rr.Result.Sum}
	if !ring.Equal(got, want) {
		t.Fatal("SecAgg+ aggregate mismatch")
	}
}

func TestSecAggPlusRoundWithDropout(t *testing.T) {
	base := secagg.Config{
		Round: 3, ClientIDs: ids(12), Threshold: 4, Bits: 20, Dim: 32,
	}
	cfg, err := NewConfig(base, 6)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[uint64]ring.Vector)
	for _, id := range cfg.ClientIDs {
		v := ring.NewVector(cfg.Bits, cfg.Dim)
		for j := range v.Data {
			v.Data[j] = id & v.Mask()
		}
		inputs[id] = v
	}
	drops := secagg.DropSchedule{4: secagg.StageMaskedInput, 9: secagg.StageMaskedInput}
	rr, err := secagg.Run(cfg, inputs, nil, drops, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	want := ring.NewVector(cfg.Bits, cfg.Dim)
	for _, id := range cfg.ClientIDs {
		if id == 4 || id == 9 {
			continue
		}
		want.AddInPlace(inputs[id])
	}
	got := ring.Vector{Bits: cfg.Bits, Data: rr.Result.Sum}
	if !ring.Equal(got, want) {
		t.Fatal("SecAgg+ dropout aggregate mismatch")
	}
}

func TestSecAggPlusWithXNoise(t *testing.T) {
	// Dordis's generality claim: XNoise composes with SecAgg+ unchanged.
	n := 10
	plan := &xnoise.Plan{NumClients: n, DropoutTolerance: 3, Threshold: 5, TargetVariance: 80}
	base := secagg.Config{
		Round: 1, ClientIDs: ids(n), Threshold: 5, Bits: 20, Dim: 8192, XNoise: plan,
	}
	cfg, err := NewConfig(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[uint64]ring.Vector)
	for _, id := range cfg.ClientIDs {
		inputs[id] = ring.NewVector(cfg.Bits, cfg.Dim)
	}
	drops := secagg.DropSchedule{2: secagg.StageMaskedInput}
	rr, err := secagg.Run(cfg, inputs, nil, drops, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs are zero, so the sum is pure residual noise at σ²*.
	got := ring.Vector{Bits: cfg.Bits, Data: rr.Result.Sum}
	residual := got.Centered()
	var sum, sumSq float64
	for _, v := range residual {
		f := float64(v)
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(len(residual))
	variance := sumSq/float64(len(residual)) - mean*mean
	if math.Abs(variance-plan.TargetVariance)/plan.TargetVariance > 0.1 {
		t.Errorf("residual variance %v, want ≈%v", variance, plan.TargetVariance)
	}
}

func TestNewConfigLowersThresholdToNeighborhood(t *testing.T) {
	base := secagg.Config{Round: 1, ClientIDs: ids(100), Threshold: 51, Bits: 20, Dim: 8}
	cfg, err := NewConfig(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Threshold > 11 {
		t.Errorf("threshold %d should fit neighborhood size 11", cfg.Threshold)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostsAsymptotics(t *testing.T) {
	sa, sap := Costs(1000, 0)
	if sa.Neighbors != 999 {
		t.Errorf("SecAgg neighbors %d", sa.Neighbors)
	}
	if sap.Neighbors >= sa.Neighbors/10 {
		t.Errorf("SecAgg+ neighbors %d not ≪ SecAgg %d", sap.Neighbors, sa.Neighbors)
	}
	if sap.MaskExpansions != sap.Neighbors+1 {
		t.Errorf("mask expansions should be degree+1")
	}
}
