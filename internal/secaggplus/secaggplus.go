// Package secaggplus implements SecAgg+ (Bell et al., CCS 2020,
// "Secure single-server aggregation with (poly)logarithmic overhead"),
// the state-of-the-art SecAgg successor Dordis evaluates against (paper
// §2.3.2 and §6.4).
//
// SecAgg+ replaces SecAgg's complete communication graph with a k-regular
// graph of degree O(log n): each client establishes pairwise masks and
// secret-shares its keys with only k neighbors, cutting the per-client
// computation and communication from O(n) to O(log n) while retaining
// dropout robustness and (with a suitable k) malicious security with high
// probability.
//
// The package provides the Harary-style k-regular circulant graph, a
// Config constructor that plugs it into the secagg engine (which is
// topology-generic), and the asymptotic cost model used by the round-time
// experiments (Figs. 2 and 10).
package secaggplus

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/secagg"
)

// CirculantGraph is the k-regular Harary-style graph over a sorted id set:
// node i is adjacent to the k/2 successors and k/2 predecessors in the
// ring ordering. It is symmetric and, for k ≥ 2, connected.
type CirculantGraph struct {
	ids    []uint64
	index  map[uint64]int
	degree int
}

// NewCirculantGraph builds a graph of even degree over ids. The degree is
// clamped to len(ids)−1 (complete graph) and rounded up to even.
func NewCirculantGraph(ids []uint64, degree int) (*CirculantGraph, error) {
	n := len(ids)
	if n < 2 {
		return nil, fmt.Errorf("secaggplus: need at least 2 nodes, got %d", n)
	}
	if degree < 2 {
		return nil, fmt.Errorf("secaggplus: degree %d < 2", degree)
	}
	if degree%2 == 1 {
		degree++
	}
	if degree > n-1 {
		degree = n - 1 // complete
	}
	sorted := append([]uint64(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	index := make(map[uint64]int, n)
	for i, id := range sorted {
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("secaggplus: duplicate id %d", id)
		}
		index[id] = i
	}
	return &CirculantGraph{ids: sorted, index: index, degree: degree}, nil
}

// Degree returns the (even, clamped) degree.
func (g *CirculantGraph) Degree() int { return g.degree }

// Neighbors implements secagg.Graph.
func (g *CirculantGraph) Neighbors(id uint64) []uint64 {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	n := len(g.ids)
	if g.degree >= n-1 {
		out := make([]uint64, 0, n-1)
		for _, v := range g.ids {
			if v != id {
				out = append(out, v)
			}
		}
		return out
	}
	seen := map[uint64]struct{}{}
	out := make([]uint64, 0, g.degree)
	for d := 1; d <= g.degree/2; d++ {
		for _, j := range []int{(i + d) % n, (i - d + n) % n} {
			v := g.ids[j]
			if v == id {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// RecommendedDegree returns the O(log n) neighborhood size suggested by
// the SecAgg+ analysis for correctness and security except with
// probability 2^−σ, simplified to the common rule of thumb
// k = ⌈c·log₂ n⌉ rounded to even, with c = 3 (covers σ ≈ 40 at the
// deployment sizes evaluated in the paper).
func RecommendedDegree(n int) int {
	if n <= 2 {
		return 2
	}
	k := int(math.Ceil(3 * math.Log2(float64(n))))
	if k%2 == 1 {
		k++
	}
	if k > n-1 {
		k = n - 1
	}
	if k < 2 {
		k = 2
	}
	return k
}

// NewConfig derives a SecAgg+ round config from a base secagg config:
// it installs the k-regular graph (degree defaulting to
// RecommendedDegree) and lowers the threshold to ⌈2(k+1)/3⌉ within the
// neighborhood if the base threshold does not fit, mirroring SecAgg+'s
// per-neighborhood reconstruction threshold.
func NewConfig(base secagg.Config, degree int) (secagg.Config, error) {
	n := len(base.ClientIDs)
	if degree <= 0 {
		degree = RecommendedDegree(n)
	}
	g, err := NewCirculantGraph(base.ClientIDs, degree)
	if err != nil {
		return secagg.Config{}, err
	}
	cfg := base
	cfg.Graph = g
	if cfg.Threshold > g.Degree()+1 {
		cfg.Threshold = (2*(g.Degree()+1) + 2) / 3
		if cfg.Threshold < 2 {
			cfg.Threshold = 2
		}
		if cfg.XNoise != nil {
			plan := *cfg.XNoise
			plan.Threshold = cfg.Threshold
			cfg.XNoise = &plan
		}
	}
	return cfg, nil
}

// CostModel captures the asymptotic per-round complexity of the two
// protocols in the units the pipeline simulator consumes. Values follow
// Table 1/§2 of Bell et al.: per-client work is O(k + d) vs SecAgg's
// O(n + d), share traffic O(k) vs O(n).
type CostModel struct {
	// Neighbors is the masking degree: n−1 for SecAgg, k for SecAgg+.
	Neighbors int
	// SharesPerClient is the number of share bundles sent: same as
	// Neighbors.
	SharesPerClient int
	// MaskExpansions is the number of PRG vector expansions a client
	// performs at masking time (pairwise masks + self mask).
	MaskExpansions int
}

// Costs returns the cost models of classic SecAgg and SecAgg+ over n
// clients with the given SecAgg+ degree (0 = recommended).
func Costs(n, degree int) (secAgg, secAggPlus CostModel) {
	if degree <= 0 {
		degree = RecommendedDegree(n)
	}
	if degree > n-1 {
		degree = n - 1
	}
	secAgg = CostModel{Neighbors: n - 1, SharesPerClient: n - 1, MaskExpansions: n}
	secAggPlus = CostModel{Neighbors: degree, SharesPerClient: degree, MaskExpansions: degree + 1}
	return
}
