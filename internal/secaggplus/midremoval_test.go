package secaggplus

import (
	"crypto/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/secagg"
	"repro/internal/xnoise"
)

// TestSecAggPlusMidRemovalRecovery exercises the hardest XNoise path under
// a sparse graph: a client that uploaded its masked input dies before
// reporting its noise seeds (U3\U5). Only its O(log n) neighbors hold
// shares of those seeds, and the server must still reconstruct them and
// land removal exactly.
func TestSecAggPlusMidRemovalRecovery(t *testing.T) {
	const n = 12
	plan := &xnoise.Plan{NumClients: n, DropoutTolerance: 4, Threshold: 5, TargetVariance: 40}
	base := secagg.Config{
		Round: 21, ClientIDs: ids(n), Threshold: 5, Bits: 20, Dim: 48, XNoise: plan,
	}
	cfg, err := NewConfig(base, 8) // degree 8 ≥ threshold 5
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[uint64]ring.Vector, n)
	for _, id := range cfg.ClientIDs {
		v := ring.NewVector(cfg.Bits, cfg.Dim)
		for j := range v.Data {
			v.Data[j] = id & v.Mask()
		}
		inputs[id] = v
	}
	// Client 7 uploads but dies before Unmasking → stage 5 fires; client 2
	// dies before uploading → |D| = 1 so components k ∈ {2,3,4} must be
	// removed from every survivor including 7 via reconstruction.
	drops := secagg.DropSchedule{
		2: secagg.StageMaskedInput,
		7: secagg.StageUnmasking,
	}
	rr, err := secagg.Run(cfg, inputs, nil, drops, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors (input-wise) are everyone but 2; |D| = 1.
	if len(rr.Result.Survivors) != n-1 {
		t.Fatalf("survivors %v", rr.Result.Survivors)
	}
	// White-box exactness: aggregate = Σ inputs + kept components
	// (k ∈ {0, 1}) of every survivor.
	want := ring.NewVector(cfg.Bits, cfg.Dim)
	for _, id := range rr.Result.Survivors {
		want.AddInPlace(inputs[id])
	}
	for _, id := range rr.Result.Survivors {
		seeds := rr.Clients[id].NoiseSeeds()
		for k := 0; k <= 1; k++ {
			comp, err := xnoise.ComponentNoise(*plan, xnoise.SkellamSampler, seeds[k], k, cfg.Dim)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.AddSignedInPlace(comp); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := ring.Vector{Bits: cfg.Bits, Data: rr.Result.Sum}
	if !ring.Equal(got, want) {
		t.Fatal("mid-removal reconstruction under SecAgg+ graph not exact")
	}
}

// TestSecAggPlusAbortsWhenNeighborhoodDies verifies that a round aborts
// (rather than producing a wrong aggregate) when a dead client's entire
// neighborhood cannot reach the reconstruction threshold.
func TestSecAggPlusAbortsWhenNeighborhoodDies(t *testing.T) {
	const n = 12
	base := secagg.Config{
		Round: 22, ClientIDs: ids(n), Threshold: 4, Bits: 20, Dim: 16,
	}
	cfg, err := NewConfig(base, 4) // neighborhood size 5
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[uint64]ring.Vector, n)
	for _, id := range cfg.ClientIDs {
		inputs[id] = ring.NewVector(cfg.Bits, cfg.Dim)
	}
	// Client 6 drops before upload; its neighbors 4,5,7,8 drop at
	// Unmasking, so < t of 6's shares remain reachable.
	drops := secagg.DropSchedule{
		6: secagg.StageMaskedInput,
		4: secagg.StageUnmasking,
		5: secagg.StageUnmasking,
		7: secagg.StageUnmasking,
		8: secagg.StageUnmasking,
	}
	if _, err := secagg.Run(cfg, inputs, nil, drops, rand.Reader); err == nil {
		t.Fatal("round should abort when a dead client's mask cannot be reconstructed")
	}
}
