package vrf

import (
	"crypto/rand"
	"math"
	"testing"
)

func TestEvaluateVerify(t *testing.T) {
	k, err := NewKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	input := RoundInput(42)
	out, proof := k.Evaluate(input)
	if !Verify(k.Public(), input, proof, out) {
		t.Fatal("valid evaluation rejected")
	}
}

func TestDeterministicUniqueOutput(t *testing.T) {
	k, _ := NewKey(rand.Reader)
	input := RoundInput(7)
	o1, p1 := k.Evaluate(input)
	o2, p2 := k.Evaluate(input)
	if o1 != o2 || string(p1) != string(p2) {
		t.Fatal("VRF must be deterministic")
	}
	// Different inputs give different outputs.
	o3, _ := k.Evaluate(RoundInput(8))
	if o1 == o3 {
		t.Fatal("distinct inputs collided")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k, _ := NewKey(rand.Reader)
	other, _ := NewKey(rand.Reader)
	input := RoundInput(3)
	out, proof := k.Evaluate(input)

	if Verify(other.Public(), input, proof, out) {
		t.Error("wrong key accepted")
	}
	if Verify(k.Public(), RoundInput(4), proof, out) {
		t.Error("wrong input accepted")
	}
	bad := append([]byte(nil), proof...)
	bad[0] ^= 1
	if Verify(k.Public(), input, bad, out) {
		t.Error("tampered proof accepted")
	}
	var wrongOut [OutputSize]byte
	if Verify(k.Public(), input, proof, wrongOut) {
		t.Error("forged output accepted")
	}
	if Verify(k.Public()[:5], input, proof, out) {
		t.Error("short key accepted")
	}
	if Verify(k.Public(), input, proof[:5], out) {
		t.Error("short proof accepted")
	}
}

func TestUniformRange(t *testing.T) {
	k, _ := NewKey(rand.Reader)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		out, _ := k.Evaluate(RoundInput(uint64(i)))
		u := Uniform(out)
		if u < 0 || u >= 1 {
			t.Fatalf("ticket %v out of [0,1)", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
		t.Errorf("ticket mean %v, want ≈0.5", mean)
	}
}

func TestThreshold(t *testing.T) {
	th, err := Threshold(16, 100, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-0.2) > 1e-12 {
		t.Errorf("threshold %v, want 0.2", th)
	}
	if th, _ := Threshold(90, 100, 2); th != 1 {
		t.Errorf("threshold should clamp to 1, got %v", th)
	}
	if _, err := Threshold(0, 100, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Threshold(10, 5, 1); err == nil {
		t.Error("k>n should error")
	}
	if _, err := Threshold(5, 100, 0.5); err == nil {
		t.Error("overSelect<1 should error")
	}
}

func population(t *testing.T, n int) map[uint64]*Key {
	t.Helper()
	keys := make(map[uint64]*Key, n)
	for i := 1; i <= n; i++ {
		k, err := NewKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		keys[uint64(i)] = k
	}
	return keys
}

func TestSampleRoundSizeAndValidity(t *testing.T) {
	keys := population(t, 200)
	var total int
	const rounds = 30
	for r := uint64(1); r <= rounds; r++ {
		claims, err := SampleRound(keys, r, 16, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(claims) > 16 {
			t.Fatalf("round %d sampled %d > k", r, len(claims))
		}
		total += len(claims)
		seen := map[uint64]bool{}
		for _, c := range claims {
			if seen[c.Client] {
				t.Fatal("duplicate participant")
			}
			seen[c.Client] = true
		}
	}
	// With 1.5× over-selection the trim should usually fill k.
	if avg := float64(total) / rounds; avg < 13 {
		t.Errorf("average sample size %v too small", avg)
	}
}

func TestSamplingUnbiasedAcrossClients(t *testing.T) {
	// No client is structurally favored: participation counts across many
	// rounds concentrate around the expectation.
	keys := population(t, 50)
	counts := map[uint64]int{}
	const rounds = 200
	for r := uint64(1); r <= rounds; r++ {
		claims, err := SampleRound(keys, r, 10, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range claims {
			counts[c.Client]++
		}
	}
	// Expectation ≈ rounds·k/n = 40. Flag only gross bias.
	for id, c := range counts {
		if c < 10 || c > 80 {
			t.Errorf("client %d participated %d times (expected ≈40)", id, c)
		}
	}
}

func TestVerifyClaimsRejectsAdversarialServer(t *testing.T) {
	keys := population(t, 20)
	pubs := make(map[uint64][]byte, len(keys))
	for id, k := range keys {
		pubs[id] = k.Public()
	}
	threshold, _ := Threshold(5, 20, 2)
	var claims []Claim
	for id, k := range keys {
		if c, in := Participates(k, id, 9, threshold); in {
			claims = append(claims, c)
		}
	}
	if len(claims) == 0 {
		t.Skip("no participants this round (improbable)")
	}
	if err := VerifyClaims(pubs, 9, threshold, claims); err != nil {
		t.Fatal(err)
	}

	// 1. Server injects a phantom client with a forged claim.
	phantom := claims[0]
	phantom.Client = 999
	if err := VerifyClaims(pubs, 9, threshold, append(claims[1:], phantom)); err == nil {
		t.Error("unregistered claim accepted")
	}
	// 2. Server replays a stale round's claim.
	k := keys[claims[0].Client]
	staleOut, staleProof := k.Evaluate(RoundInput(8))
	stale := Claim{Client: claims[0].Client, Output: staleOut, Proof: staleProof}
	if err := VerifyClaims(pubs, 9, threshold, append(claims[1:], stale)); err == nil {
		t.Error("stale-round claim accepted")
	}
	// 3. Server includes a client whose ticket is above threshold.
	if err := VerifyClaims(pubs, 9, 1e-9, claims); err == nil {
		t.Error("above-threshold ticket accepted")
	}
	// 4. Duplicate claims.
	if err := VerifyClaims(pubs, 9, threshold, append(claims, claims[0])); err == nil {
		t.Error("duplicate claim accepted")
	}
}

func TestTrimDeterministicAndOrdered(t *testing.T) {
	keys := population(t, 100)
	threshold, _ := Threshold(30, 100, 2)
	var claims []Claim
	for id, k := range keys {
		if c, in := Participates(k, id, 5, threshold); in {
			claims = append(claims, c)
		}
	}
	a := Trim(claims, 10)
	b := Trim(claims, 10)
	for i := range a {
		if a[i].Client != b[i].Client {
			t.Fatal("trim must be deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Ticket() > a[i].Ticket() {
			t.Fatal("trim must keep the smallest tickets")
		}
	}
	// Trimmed-out claims have larger tickets than kept ones.
	if len(claims) > 10 {
		maxKept := a[len(a)-1].Ticket()
		kept := map[uint64]bool{}
		for _, c := range a {
			kept[c.Client] = true
		}
		for _, c := range claims {
			if !kept[c.Client] && c.Ticket() < maxKept {
				t.Fatal("trim dropped a smaller ticket than one it kept")
			}
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	k, _ := NewKey(rand.Reader)
	input := RoundInput(1)
	for i := 0; i < b.N; i++ {
		_, _ = k.Evaluate(input)
	}
}

func BenchmarkVerify(b *testing.B) {
	k, _ := NewKey(rand.Reader)
	input := RoundInput(1)
	out, proof := k.Evaluate(input)
	pub := k.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(pub, input, proof, out) {
			b.Fatal("verify failed")
		}
	}
}
