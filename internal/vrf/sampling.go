package vrf

import (
	"fmt"
	"sort"
)

// The sampling protocol of §7: the server announces a round; every client
// evaluates its VRF on the round index and joins if its ticket falls below
// the agreed threshold; the server broadcasts the claims for mutual
// verification and trims over-selection by ticket order (an
// "indiscriminate criterion on their randomness").

// Claim is one client's participation claim for a round.
type Claim struct {
	Client uint64
	Output [OutputSize]byte
	Proof  []byte
}

// Ticket returns the claim's lottery value in [0, 1).
func (c Claim) Ticket() float64 { return Uniform(c.Output) }

// Participates evaluates a client's lottery for the round and returns its
// claim when the ticket falls under threshold.
func Participates(k *Key, client uint64, round uint64, threshold float64) (Claim, bool) {
	out, proof := k.Evaluate(RoundInput(round))
	claim := Claim{Client: client, Output: out, Proof: proof}
	return claim, claim.Ticket() < threshold
}

// VerifyClaims checks every claim against the registered public keys and
// the round's threshold, returning an error naming the first invalid
// claim. A sampled client runs this on the server's broadcast before
// proceeding with training (§7: "a participant proceeds with the training
// only if all verification tests are successfully passed").
func VerifyClaims(keys map[uint64][]byte, round uint64, threshold float64, claims []Claim) error {
	input := RoundInput(round)
	seen := make(map[uint64]bool, len(claims))
	for _, c := range claims {
		if seen[c.Client] {
			return fmt.Errorf("vrf: duplicate claim from client %d", c.Client)
		}
		seen[c.Client] = true
		pub, ok := keys[c.Client]
		if !ok {
			return fmt.Errorf("vrf: claim from unregistered client %d", c.Client)
		}
		if !Verify(pub, input, c.Proof, c.Output) {
			return fmt.Errorf("vrf: invalid proof from client %d", c.Client)
		}
		if c.Ticket() >= threshold {
			return fmt.Errorf("vrf: client %d ticket %.4f above threshold %.4f",
				c.Client, c.Ticket(), threshold)
		}
	}
	return nil
}

// Trim deterministically reduces an over-selected claim set to at most k
// participants by ascending ticket (ties broken by client id), the
// indiscriminate criterion of §7. The input is not modified.
func Trim(claims []Claim, k int) []Claim {
	out := append([]Claim(nil), claims...)
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Ticket(), out[j].Ticket()
		if ti != tj {
			return ti < tj
		}
		return out[i].Client < out[j].Client
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SampleRound runs the full client-side + server-side sampling for one
// round over a population of keys, returning the verified, trimmed
// participant set. It is the reference implementation tests compare
// adversarial behavior against.
func SampleRound(keys map[uint64]*Key, round uint64, k int, overSelect float64) ([]Claim, error) {
	threshold, err := Threshold(k, len(keys), overSelect)
	if err != nil {
		return nil, err
	}
	var claims []Claim
	for id, key := range keys {
		if c, in := Participates(key, id, round, threshold); in {
			claims = append(claims, c)
		}
	}
	pubs := make(map[uint64][]byte, len(keys))
	for id, key := range keys {
		pubs[id] = key.Public()
	}
	if err := VerifyClaims(pubs, round, threshold, claims); err != nil {
		return nil, err
	}
	return Trim(claims, k), nil
}
