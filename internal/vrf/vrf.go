// Package vrf implements a verifiable random function and the VRF-based
// random client sampling the paper sketches in §7 ("Random Client Sampling
// with VRFs", following Lotto [40]): each client derives its per-round
// participation from its own key and the round index, producing a proof
// anyone can verify — so a malicious server cannot cherry-pick colluding
// clients into the sampled set.
//
// Construction: Ed25519 signatures are deterministic (RFC 8032), so
//
//	proof  = Sign(sk, "dordis/vrf/v1" ∥ input)
//	output = SHA-256(proof)
//
// is a practical VRF: the output is uniquely determined by (sk, input),
// unpredictable without sk, and verifiable with pk by checking the
// signature and re-hashing. (This is the folklore "signature VRF"; it has
// uniqueness because Ed25519 signing is deterministic and verification
// pins the single valid signature for honestly generated keys.)
package vrf

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// domainSep prefixes every VRF input.
const domainSep = "dordis/vrf/v1"

// ProofSize is the proof length in bytes.
const ProofSize = ed25519.SignatureSize

// OutputSize is the VRF output length in bytes.
const OutputSize = sha256.Size

// Key is a client's VRF key pair.
type Key struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewKey generates a key pair from rand.
func NewKey(rand io.Reader) (*Key, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("vrf: generating key: %w", err)
	}
	return &Key{priv: priv, pub: pub}, nil
}

// Public returns the public verification key.
func (k *Key) Public() []byte {
	out := make([]byte, len(k.pub))
	copy(out, k.pub)
	return out
}

func message(input []byte) []byte {
	msg := make([]byte, 0, len(domainSep)+len(input))
	msg = append(msg, domainSep...)
	msg = append(msg, input...)
	return msg
}

// Evaluate computes the VRF output and proof on input.
func (k *Key) Evaluate(input []byte) (output [OutputSize]byte, proof []byte) {
	proof = ed25519.Sign(k.priv, message(input))
	output = sha256.Sum256(proof)
	return output, proof
}

// Verify checks that (output, proof) is the unique VRF evaluation of input
// under pub.
func Verify(pub, input, proof []byte, output [OutputSize]byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(proof) != ProofSize {
		return false
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), message(input), proof) {
		return false
	}
	return sha256.Sum256(proof) == output
}

// Uniform maps a VRF output to a float in [0, 1) with 53 bits of
// precision — the participation lottery ticket.
func Uniform(output [OutputSize]byte) float64 {
	v := binary.LittleEndian.Uint64(output[:8])
	return float64(v>>11) / (1 << 53)
}

// RoundInput canonically encodes a sampling round's VRF input.
func RoundInput(round uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], round)
	return b[:]
}

// Threshold returns the participation threshold for an expected sample of
// k out of n clients, with overSelect ≥ 1 inflating the expectation so the
// server can trim back to exactly k (§7: "slightly adjusting the selection
// threshold for over-selection, and then discarding excessive clients
// based on indiscriminate criteria on their randomness").
func Threshold(k, n int, overSelect float64) (float64, error) {
	if k <= 0 || n <= 0 || k > n {
		return 0, fmt.Errorf("vrf: invalid sample size %d of %d", k, n)
	}
	if overSelect < 1 {
		return 0, fmt.Errorf("vrf: overSelect %v < 1", overSelect)
	}
	t := overSelect * float64(k) / float64(n)
	return math.Min(t, 1), nil
}
