// Package transport carries protocol messages between the server and
// clients over a star topology (all client↔client traffic is relayed by
// the server, as in the paper's server-mediated network, §3.3).
//
// Two implementations are provided: an in-memory transport (channels) used
// by simulations and tests, and a TCP transport (length-prefixed gob
// frames) used by the deployment-flavor binaries. Both present the same
// interfaces, so the protocol drivers in package core are transport-
// agnostic.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame is one protocol message on the wire. Payload encoding is the
// caller's concern (package core uses gob).
type Frame struct {
	From    uint64
	Stage   int
	Payload []byte
}

// ClientConn is a client's connection to the server.
type ClientConn interface {
	// Send delivers a frame to the server.
	Send(Frame) error
	// Recv blocks for the next frame from the server.
	Recv(ctx context.Context) (Frame, error)
	// Close severs the connection (used to exercise dropout).
	Close() error
}

// ServerConn is the server's endpoint.
type ServerConn interface {
	// SendTo delivers a frame to one client.
	SendTo(client uint64, f Frame) error
	// Recv blocks for the next frame from any client. Frames from closed
	// clients stop arriving; callers use deadlines/thresholds, as the
	// protocol prescribes.
	Recv(ctx context.Context) (Frame, error)
	// Clients lists the currently connected client ids.
	Clients() []uint64
	// Close shuts the server endpoint down.
	Close() error
}

// ErrClosed is returned on use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// --- wire framing (shared by the TCP transport) ---

const maxFrameBytes = 1 << 28 // 256 MiB: above any chunked update we send

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, f Frame) error {
	var hdr [20]byte
	if len(f.Payload) > maxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(f.Payload))
	}
	binary.LittleEndian.PutUint64(hdr[0:], f.From)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.Stage))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint64(hdr[12:])
	if n > maxFrameBytes {
		return Frame{}, fmt.Errorf("transport: declared frame size %d exceeds limit", n)
	}
	f := Frame{
		From:    binary.LittleEndian.Uint64(hdr[0:]),
		Stage:   int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, err
	}
	return f, nil
}
