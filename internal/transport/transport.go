// Package transport carries protocol messages between the server and
// clients over a star topology (all client↔client traffic is relayed by
// the server, as in the paper's server-mediated network, §3.3).
//
// Two implementations are provided: an in-memory transport (channels) used
// by simulations and tests, and a TCP transport (length-prefixed gob
// frames) used by the deployment-flavor binaries. Both present the same
// interfaces, so the protocol drivers in package core are transport-
// agnostic.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"unsafe"

	"repro/internal/endian"
)

// Frame is one protocol message on the wire. Payload encoding is the
// caller's concern (package core uses gob).
type Frame struct {
	From    uint64
	Stage   int
	Payload []byte
}

// ClientConn is a client's connection to the server.
type ClientConn interface {
	// Send delivers a frame to the server.
	Send(Frame) error
	// Recv blocks for the next frame from the server.
	Recv(ctx context.Context) (Frame, error)
	// Close severs the connection (used to exercise dropout).
	Close() error
}

// ServerConn is the server's endpoint.
type ServerConn interface {
	// SendTo delivers a frame to one client.
	SendTo(client uint64, f Frame) error
	// Recv blocks for the next frame from any client. Frames from closed
	// clients stop arriving; callers use deadlines/thresholds, as the
	// protocol prescribes.
	Recv(ctx context.Context) (Frame, error)
	// Clients lists the currently connected client ids.
	Clients() []uint64
	// Close shuts the server endpoint down.
	Close() error
}

// ErrClosed is returned on use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// --- wire framing (shared by the TCP transport) ---

const maxFrameBytes = 1 << 28 // 256 MiB: above any chunked update we send

// writeFrame writes a length-prefixed frame. Header and payload go out in
// one gathered write (writev on TCP connections), so a frame never splits
// into a 20-byte segment followed by the payload.
func writeFrame(w io.Writer, f Frame) error {
	var hdr [20]byte
	if len(f.Payload) > maxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(f.Payload))
	}
	binary.LittleEndian.PutUint64(hdr[0:], f.From)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.Stage))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(f.Payload)))
	bufs := net.Buffers{hdr[:], f.Payload}
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint64(hdr[12:])
	if n > maxFrameBytes {
		return Frame{}, fmt.Errorf("transport: declared frame size %d exceeds limit", n)
	}
	f := Frame{
		From:    binary.LittleEndian.Uint64(hdr[0:]),
		Stage:   int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// --- bulk little-endian word codecs (shared by the binary payload codecs) ---

// AppendUint64sLE appends xs to dst in little-endian wire order. On
// little-endian hosts the word slab is copied in one memmove; the
// big-endian fallback encodes per element.
func AppendUint64sLE(dst []byte, xs []uint64) []byte {
	if len(xs) == 0 {
		return dst
	}
	if endian.HostLittle {
		src := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*8)
		return append(dst, src...)
	}
	off := len(dst)
	dst = append(dst, make([]byte, len(xs)*8)...)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(dst[off+i*8:], x)
	}
	return dst
}

// AppendBlob appends a 16-bit-length-prefixed byte blob to dst — the
// shared small-field codec of the session persistence records
// (secagg/persist.go, lightsecagg/persist.go) and the handshake signature
// section (core/handshake.go). The caller guarantees len(b) fits a
// uint16 (all users carry fixed-size crypto material: 32-byte keys,
// 64-byte signatures); larger blobs are a programmer error and panic.
func AppendBlob(dst, b []byte) []byte {
	if len(b) > 1<<16-1 {
		panic(fmt.Sprintf("transport: blob of %d bytes exceeds uint16 framing", len(b)))
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(b)))
	dst = append(dst, l[:]...)
	return append(dst, b...)
}

// DecodeBlob decodes a blob written by AppendBlob into a fresh slice,
// returning the remaining bytes. maxLen caps the declared length so a
// hostile prefix cannot force a large allocation; a zero-length blob
// decodes as nil.
func DecodeBlob(src []byte, maxLen int) ([]byte, []byte, error) {
	if len(src) < 2 {
		return nil, nil, fmt.Errorf("transport: blob header truncated")
	}
	n := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	if n > maxLen {
		return nil, nil, fmt.Errorf("transport: declared blob of %d bytes exceeds cap %d", n, maxLen)
	}
	if len(src) < n {
		return nil, nil, fmt.Errorf("transport: blob truncated")
	}
	var out []byte
	if n > 0 {
		out = append([]byte(nil), src[:n]...)
	}
	return out, src[n:], nil
}

// DecodeUint64sLE decodes n little-endian uint64 words from src into a
// fresh slice, returning the remaining bytes. It is the inverse of
// AppendUint64sLE.
func DecodeUint64sLE(src []byte, n int) ([]uint64, []byte, error) {
	if n < 0 || len(src) < n*8 {
		return nil, nil, fmt.Errorf("transport: word slab truncated: need %d bytes, have %d", n*8, len(src))
	}
	if n == 0 {
		return nil, src, nil
	}
	out := make([]uint64, n)
	if endian.HostLittle {
		dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*8)
		copy(dst, src[:n*8])
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(src[i*8:])
		}
	}
	return out, src[n*8:], nil
}
