package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// TCPServer is the server endpoint of the TCP transport. Clients dial in
// and introduce themselves with an 8-byte id preamble; every subsequent
// exchange is a length-prefixed Frame.
type TCPServer struct {
	ln net.Listener

	mu      sync.Mutex
	conns   map[uint64]net.Conn
	inbox   chan Frame
	closed  bool
	readers sync.WaitGroup
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &TCPServer{
		ln:    ln,
		conns: make(map[uint64]net.Conn),
		inbox: make(chan Frame, 1024),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address (for clients to dial).
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handshake(conn)
	}
}

func (s *TCPServer) handshake(conn net.Conn) {
	var idBuf [8]byte
	if _, err := readFull(conn, idBuf[:]); err != nil {
		conn.Close()
		return
	}
	id := binary.LittleEndian.Uint64(idBuf[:])
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := s.conns[id]; dup {
		old.Close()
	}
	s.conns[id] = conn
	s.readers.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.readers.Done()
		for {
			f, err := readFrame(conn)
			if err != nil {
				s.mu.Lock()
				if s.conns[id] == conn {
					delete(s.conns, id)
				}
				s.mu.Unlock()
				conn.Close()
				return
			}
			f.From = id // trust the connection, not the frame header
			s.inbox <- f
		}
	}()
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SendTo implements ServerConn.
func (s *TCPServer) SendTo(client uint64, f Frame) error {
	s.mu.Lock()
	conn, ok := s.conns[client]
	s.mu.Unlock()
	if !ok {
		return ErrClosed
	}
	return writeFrame(conn, f)
}

// Recv implements ServerConn.
func (s *TCPServer) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-s.inbox:
		return f, nil
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// Clients implements ServerConn.
func (s *TCPServer) Clients() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close implements ServerConn.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = map[uint64]net.Conn{}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return s.ln.Close()
}

// TCPClient is a client endpoint.
type TCPClient struct {
	id   uint64
	conn net.Conn

	mu     sync.Mutex
	closed bool
}

// DialTCP connects to the server and introduces the client id. Errors name
// the target address and the client id, so the retry loops layered on top
// (DialRetry, the dordis-node reconnect path) log something actionable.
func DialTCP(addr string, id uint64) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (client %d): %w", addr, id, err)
	}
	var idBuf [8]byte
	binary.LittleEndian.PutUint64(idBuf[:], id)
	if _, err := conn.Write(idBuf[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello write to %s (client %d): %w", addr, id, err)
	}
	return &TCPClient{id: id, conn: conn}, nil
}

// RetryConfig tunes DialRetry's backoff. The zero value picks the
// defaults noted on each field.
type RetryConfig struct {
	// BaseDelay is the first retry's backoff; doubles per attempt.
	// ≤ 0 defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. ≤ 0 defaults to 2s.
	MaxDelay time.Duration
	// Jitter adds a uniform random fraction of the current backoff (0.2 =
	// up to +20%), decorrelating a thundering herd of reconnecting
	// clients. < 0 disables; 0 defaults to 0.5.
	Jitter float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	return c
}

// DialRetry dials the server with capped exponential backoff until it
// succeeds or ctx is done — the retrying counterpart of DialTCP that turns
// a transient disconnect (server restart, network blip, dropped NAT
// binding) into a delay instead of a process death. The context carries
// the overall deadline; per-attempt errors are remembered and wrapped into
// the final error when the budget runs out.
func DialRetry(ctx context.Context, addr string, id uint64, cfg RetryConfig) (*TCPClient, error) {
	cfg = cfg.withDefaults()
	delay := cfg.BaseDelay
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("transport: dial retry to %s (client %d) gave up after %d attempts: %w (last: %v)",
					addr, id, attempt, err, lastErr)
			}
			return nil, fmt.Errorf("transport: dial retry to %s (client %d): %w", addr, id, err)
		}
		c, err := DialTCP(addr, id)
		if err == nil {
			return c, nil
		}
		lastErr = err
		sleep := delay
		if cfg.Jitter > 0 {
			sleep += time.Duration(mrand.Float64() * cfg.Jitter * float64(delay))
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
		case <-timer.C:
		}
		if delay *= 2; delay > cfg.MaxDelay {
			delay = cfg.MaxDelay
		}
	}
}

// Send implements ClientConn.
func (c *TCPClient) Send(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	f.From = c.id
	return writeFrame(c.conn, f)
}

// Recv implements ClientConn.
func (c *TCPClient) Recv(ctx context.Context) (Frame, error) {
	type result struct {
		f   Frame
		err error
	}
	ch := make(chan result, 1)
	go func() {
		f, err := readFrame(c.conn)
		ch <- result{f, err}
	}()
	select {
	case r := <-ch:
		return r.f, r.err
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// Close implements ClientConn.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

var (
	_ ServerConn = (*TCPServer)(nil)
	_ ClientConn = (*TCPClient)(nil)
)
