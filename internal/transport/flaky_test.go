package transport

import (
	"context"
	"testing"
	"time"

	"repro/internal/prg"
)

func drain(t *testing.T, s ServerConn, wait time.Duration) []Frame {
	t.Helper()
	var out []Frame
	for {
		ctx, cancel := context.WithTimeout(context.Background(), wait)
		f, err := s.Recv(ctx)
		cancel()
		if err != nil {
			return out
		}
		out = append(out, f)
	}
}

func TestFlakyDropAll(t *testing.T) {
	n := NewMemoryNetwork(16)
	fi := NewFaultInjector(FaultConfig{DropProb: 1, Seed: prg.NewSeed([]byte("dropall"))})
	c, err := n.Connect(7)
	if err != nil {
		t.Fatal(err)
	}
	fc := fi.WrapClient(c)
	for i := 0; i < 5; i++ {
		if err := fc.Send(Frame{Stage: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := drain(t, n.Server(), 20*time.Millisecond); len(got) != 0 {
		t.Fatalf("received %d frames through a drop-all link", len(got))
	}
	if drops, _ := fi.Counts(); drops != 5 {
		t.Errorf("drops = %d, want 5", drops)
	}
}

func TestFlakyDuplicates(t *testing.T) {
	n := NewMemoryNetwork(64)
	fi := NewFaultInjector(FaultConfig{DupProb: 1, Seed: prg.NewSeed([]byte("dupall"))})
	c, err := n.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	fc := fi.WrapClient(c)
	const sent = 4
	for i := 0; i < sent; i++ {
		if err := fc.Send(Frame{Stage: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, n.Server(), 20*time.Millisecond)
	if len(got) != 2*sent {
		t.Fatalf("received %d frames, want %d (every frame duplicated)", len(got), 2*sent)
	}
	if _, dups := fi.Counts(); dups != sent {
		t.Errorf("dups = %d, want %d", dups, sent)
	}
}

func TestFlakyAfterSendGrace(t *testing.T) {
	n := NewMemoryNetwork(16)
	fi := NewFaultInjector(FaultConfig{DropProb: 1, AfterSend: 3, Seed: prg.NewSeed([]byte("grace"))})
	c, err := n.Connect(2)
	if err != nil {
		t.Fatal(err)
	}
	fc := fi.WrapClient(c)
	for i := 0; i < 6; i++ {
		if err := fc.Send(Frame{Stage: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, n.Server(), 20*time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("received %d frames, want the 3 grace-period sends", len(got))
	}
	for i, f := range got {
		if f.Stage != i {
			t.Errorf("frame %d has stage %d, want %d (order preserved)", i, f.Stage, i)
		}
	}
}

// TestFlakyDeterministic: identical seeds produce identical fault
// sequences — the property that makes chaos runs reproducible.
func TestFlakyDeterministic(t *testing.T) {
	pattern := func() []bool {
		n := NewMemoryNetwork(64)
		fi := NewFaultInjector(FaultConfig{DropProb: 0.5, Seed: prg.NewSeed([]byte("det"))})
		c, _ := n.Connect(1)
		fc := fi.WrapClient(c)
		const sends = 32
		for i := 0; i < sends; i++ {
			fc.Send(Frame{Stage: i})
		}
		arrived := make([]bool, sends)
		for _, f := range drain(t, n.Server(), 20*time.Millisecond) {
			arrived[f.Stage] = true
		}
		return arrived
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverged at frame %d", i)
		}
	}
	// And the pattern must actually mix drops with deliveries.
	var delivered int
	for _, ok := range a {
		if ok {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("p=0.5 delivered %d/%d — injector not randomizing", delivered, len(a))
	}
}

func TestFlakyDelayBounded(t *testing.T) {
	n := NewMemoryNetwork(16)
	const maxDelay = 30 * time.Millisecond
	fi := NewFaultInjector(FaultConfig{DelayMax: maxDelay, Seed: prg.NewSeed([]byte("delay"))})
	c, err := n.Connect(3)
	if err != nil {
		t.Fatal(err)
	}
	fc := fi.WrapClient(c)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := fc.Send(Frame{Stage: i}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 6*maxDelay {
		t.Errorf("5 delayed sends took %v, want < %v", elapsed, 6*maxDelay)
	}
	if got := drain(t, n.Server(), 20*time.Millisecond); len(got) != 5 {
		t.Fatalf("received %d frames, want 5 (delay must not lose frames)", len(got))
	}
}

func TestFlakyServerSide(t *testing.T) {
	n := NewMemoryNetwork(16)
	fi := NewFaultInjector(FaultConfig{DropProb: 1, Seed: prg.NewSeed([]byte("srv"))})
	c, err := n.Connect(9)
	if err != nil {
		t.Fatal(err)
	}
	fs := fi.WrapServer(n.Server())
	if err := fs.SendTo(9, Frame{Stage: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Recv(ctx); err == nil {
		t.Fatal("frame arrived through a drop-all server link")
	}
	if len(fs.Clients()) != 1 {
		t.Errorf("Clients() should pass through, got %v", fs.Clients())
	}
}
