package transport

import (
	"context"
	"sort"
	"sync"
)

// MemoryNetwork is an in-process star network: one server endpoint and any
// number of client endpoints, connected by buffered channels. It is safe
// for concurrent use.
type MemoryNetwork struct {
	mu       sync.Mutex
	toServer chan Frame
	toClient map[uint64]chan Frame
	closed   bool
}

// NewMemoryNetwork creates a network with the given per-direction buffer.
func NewMemoryNetwork(buffer int) *MemoryNetwork {
	if buffer < 1 {
		buffer = 64
	}
	return &MemoryNetwork{
		toServer: make(chan Frame, buffer),
		toClient: make(map[uint64]chan Frame),
	}
}

// memoryClient implements ClientConn.
type memoryClient struct {
	id   uint64
	net  *MemoryNetwork
	in   chan Frame
	done chan struct{} // closed by Close; unblocks pending Recvs

	mu     sync.Mutex
	closed bool
}

// memoryServer implements ServerConn.
type memoryServer struct {
	net *MemoryNetwork
}

// Connect attaches a client with the given id and returns its endpoint.
func (n *MemoryNetwork) Connect(id uint64) (ClientConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.toClient[id]; dup {
		return nil, ErrClosed
	}
	in := make(chan Frame, cap(n.toServer))
	n.toClient[id] = in
	return &memoryClient{id: id, net: n, in: in, done: make(chan struct{})}, nil
}

// Server returns the server endpoint.
func (n *MemoryNetwork) Server() ServerConn {
	return &memoryServer{net: n}
}

func (c *memoryClient) Send(f Frame) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	f.From = c.id
	select {
	case c.net.toServer <- f:
		return nil
	default:
	}
	// Block if the buffer is full (back-pressure).
	c.net.toServer <- f
	return nil
}

func (c *memoryClient) Recv(ctx context.Context) (Frame, error) {
	select {
	case f, ok := <-c.in:
		if !ok {
			return Frame{}, ErrClosed
		}
		return f, nil
	case <-c.done:
		// A closed endpoint fails pending reads immediately, like a real
		// socket — a killed client must not hang until its context expires.
		return Frame{}, ErrClosed
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

func (c *memoryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.done)
	c.net.mu.Lock()
	delete(c.net.toClient, c.id)
	c.net.mu.Unlock()
	return nil
}

func (s *memoryServer) SendTo(client uint64, f Frame) error {
	s.net.mu.Lock()
	ch, ok := s.net.toClient[client]
	s.net.mu.Unlock()
	if !ok {
		return ErrClosed
	}
	ch <- f
	return nil
}

func (s *memoryServer) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-s.net.toServer:
		return f, nil
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

func (s *memoryServer) Clients() []uint64 {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	out := make([]uint64, 0, len(s.net.toClient))
	for id := range s.net.toClient {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *memoryServer) Close() error {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	s.net.closed = true
	return nil
}
