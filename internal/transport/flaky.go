package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/prg"
)

// FaultConfig parameterizes deterministic fault injection for chaos tests:
// the paper's client dynamics ("network errors, low battery, or changes in
// eligibility … at any time") translate into lost, duplicated, and delayed
// frames at the transport layer. All faults are drawn from a seeded PRG so
// failures reproduce exactly.
type FaultConfig struct {
	DropProb  float64       // probability a frame is silently discarded
	DupProb   float64       // probability a frame is delivered twice
	DelayMax  time.Duration // per-frame delay uniform in [0, DelayMax]
	Seed      prg.Seed      // drives all fault draws
	AfterSend int           // faults apply only after this many clean sends (0 = immediately)
}

// FaultInjector wraps transport endpoints with FaultConfig behavior. One
// injector may wrap many endpoints; its random stream is shared and
// mutex-protected, so the global fault sequence is deterministic for a
// fixed wrapping and send order.
type FaultInjector struct {
	cfg FaultConfig

	mu    sync.Mutex
	s     *prg.Stream
	sends int

	// Drops counts discarded frames; Dups counts extra deliveries.
	drops int
	dups  int
}

// NewFaultInjector builds an injector from the config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, s: prg.NewStream(cfg.Seed)}
}

// Counts reports the faults injected so far (drops, duplicates).
func (fi *FaultInjector) Counts() (drops, dups int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.drops, fi.dups
}

// decide draws the fate of one frame: (drop, duplicate, delay).
func (fi *FaultInjector) decide() (bool, bool, time.Duration) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.sends++
	if fi.sends <= fi.cfg.AfterSend {
		return false, false, 0
	}
	drop := fi.s.Float64() < fi.cfg.DropProb
	dup := !drop && fi.s.Float64() < fi.cfg.DupProb
	var delay time.Duration
	if fi.cfg.DelayMax > 0 {
		delay = time.Duration(fi.s.Float64() * float64(fi.cfg.DelayMax))
	}
	if drop {
		fi.drops++
	}
	if dup {
		fi.dups++
	}
	return drop, dup, delay
}

// WrapClient returns a ClientConn whose Send path is subject to faults.
// Recv and Close pass through.
func (fi *FaultInjector) WrapClient(c ClientConn) ClientConn {
	return &flakyClient{inner: c, fi: fi}
}

// WrapServer returns a ServerConn whose SendTo path is subject to faults.
func (fi *FaultInjector) WrapServer(s ServerConn) ServerConn {
	return &flakyServer{inner: s, fi: fi}
}

type flakyClient struct {
	inner ClientConn
	fi    *FaultInjector
}

func (c *flakyClient) Send(f Frame) error {
	drop, dup, delay := c.fi.decide()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return nil // silently lost: sender believes it succeeded
	}
	if err := c.inner.Send(f); err != nil {
		return err
	}
	if dup {
		return c.inner.Send(f)
	}
	return nil
}

func (c *flakyClient) Recv(ctx context.Context) (Frame, error) { return c.inner.Recv(ctx) }
func (c *flakyClient) Close() error                            { return c.inner.Close() }

type flakyServer struct {
	inner ServerConn
	fi    *FaultInjector
}

func (s *flakyServer) SendTo(client uint64, f Frame) error {
	drop, dup, delay := s.fi.decide()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return nil
	}
	if err := s.inner.SendTo(client, f); err != nil {
		return err
	}
	if dup {
		return s.inner.SendTo(client, f)
	}
	return nil
}

func (s *flakyServer) Recv(ctx context.Context) (Frame, error) { return s.inner.Recv(ctx) }
func (s *flakyServer) Clients() []uint64                       { return s.inner.Clients() }
func (s *flakyServer) Close() error                            { return s.inner.Close() }
