package transport

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func testPair(t *testing.T, server ServerConn, clients map[uint64]ClientConn) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Client → server.
	payload := []byte("hello from 7")
	if err := clients[7].Send(Frame{Stage: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := server.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 7 || f.Stage != 2 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("server received %+v", f)
	}

	// Server → clients.
	for id, c := range clients {
		msg := Frame{Stage: 3, Payload: []byte{byte(id)}}
		if err := server.SendTo(id, msg); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stage != 3 || got.Payload[0] != byte(id) {
			t.Fatalf("client %d received %+v", id, got)
		}
	}

	// Spoofing protection: the From field is overwritten by the endpoint.
	if err := clients[9].Send(Frame{From: 7, Stage: 1, Payload: []byte("spoof")}); err != nil {
		t.Fatal(err)
	}
	f, err = server.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 9 {
		t.Fatalf("spoofed From accepted: %d", f.From)
	}
}

func TestMemoryTransport(t *testing.T) {
	n := NewMemoryNetwork(16)
	clients := map[uint64]ClientConn{}
	for _, id := range []uint64{7, 9} {
		c, err := n.Connect(id)
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
	}
	testPair(t, n.Server(), clients)
}

func TestMemoryDuplicateID(t *testing.T) {
	n := NewMemoryNetwork(4)
	if _, err := n.Connect(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(1); err == nil {
		t.Fatal("duplicate id should be rejected")
	}
}

func TestMemoryClosedClient(t *testing.T) {
	n := NewMemoryNetwork(4)
	c, _ := n.Connect(1)
	c.Close()
	if err := c.Send(Frame{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := n.Server().SendTo(1, Frame{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed client: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clients := map[uint64]ClientConn{}
	for _, id := range []uint64{7, 9} {
		c, err := DialTCP(srv.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[id] = c
	}
	// Give the handshakes a moment to register.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Clients()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	testPair(t, srv, clients)
}

func TestTCPLargeFrame(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.Send(Frame{Stage: 1, Payload: big}); err != nil {
			t.Error(err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f, err := srv.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(f.Payload, big) {
		t.Fatal("large frame corrupted")
	}
}

func TestTCPClientDisappears(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Clients()) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	// Eventually the server drops the client from its roster.
	for time.Now().Before(deadline) {
		if len(srv.Clients()) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never noticed the dropped client")
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{From: 42, Stage: 5, Payload: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || out.Stage != in.Stage || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip %+v → %+v", in, out)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	// Forge an oversized header.
	hdr := make([]byte, 20)
	hdr[12] = 0xff
	hdr[13] = 0xff
	hdr[14] = 0xff
	hdr[15] = 0xff
	hdr[16] = 0x01
	buf.Write(hdr)
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame header should be rejected")
	}
}

func TestServerRecvTimeout(t *testing.T) {
	n := NewMemoryNetwork(4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := n.Server().Recv(ctx); err == nil {
		t.Fatal("Recv should respect the context deadline")
	}
}
