// Package aead provides the authenticated-encryption scheme AE used by
// SecAgg (paper Fig. 5): an IND-CPA and INT-CTXT secure scheme that clients
// use to encrypt Shamir shares for one another over the server-mediated
// channel. The server relays ciphertexts it cannot read or undetectably
// modify.
//
// The instantiation is AES-256-GCM with a random 12-byte nonce prepended to
// each ciphertext. Associated data binds the ciphertext to its routing
// metadata (sender u, receiver v, round), preventing the mix-and-match
// replay the SecAgg security proof excludes.
package aead

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key length in bytes (AES-256).
const KeySize = 32

// NonceSize is the GCM nonce length in bytes.
const NonceSize = 12

// Overhead is the ciphertext expansion: nonce + GCM tag.
const Overhead = NonceSize + 16

// ErrDecrypt is returned on any authentication or decryption failure; the
// cause is deliberately not distinguished (a decryption oracle distinction
// would weaken INT-CTXT in practice).
var ErrDecrypt = errors.New("aead: decryption failed")

func newGCM(key [KeySize]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("aead: %w", err)
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("aead: %w", err)
	}
	return g, nil
}

// Seal encrypts plaintext under key, binding associated data ad. The nonce
// is drawn from rand and prepended to the returned ciphertext.
func Seal(key [KeySize]byte, rand io.Reader, plaintext, ad []byte) ([]byte, error) {
	g, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+g.Overhead())
	if _, err := io.ReadFull(rand, out[:NonceSize]); err != nil {
		return nil, fmt.Errorf("aead: reading nonce: %w", err)
	}
	return g.Seal(out, out[:NonceSize], plaintext, ad), nil
}

// Open decrypts a ciphertext produced by Seal, verifying the associated
// data. It returns ErrDecrypt on any failure.
func Open(key [KeySize]byte, ciphertext, ad []byte) ([]byte, error) {
	if len(ciphertext) < Overhead {
		return nil, ErrDecrypt
	}
	g, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := g.Open(nil, ciphertext[:NonceSize], ciphertext[NonceSize:], ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
