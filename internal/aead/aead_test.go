package aead

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func key(b byte) (k [KeySize]byte) {
	for i := range k {
		k[i] = b
	}
	return
}

func TestRoundTrip(t *testing.T) {
	k := key(1)
	pt := []byte("secret share payload")
	ad := []byte("u=3|v=7|round=12")
	ct, err := Seal(k, rand.Reader, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(k, ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("got %q want %q", got, pt)
	}
}

func TestRoundTripProperty(t *testing.T) {
	k := key(9)
	f := func(pt, ad []byte) bool {
		ct, err := Seal(k, rand.Reader, pt, ad)
		if err != nil {
			return false
		}
		got, err := Open(k, ct, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	ct, _ := Seal(key(1), rand.Reader, []byte("x"), nil)
	if _, err := Open(key(2), ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("want ErrDecrypt, got %v", err)
	}
}

func TestWrongADFails(t *testing.T) {
	ct, _ := Seal(key(1), rand.Reader, []byte("x"), []byte("u=1|v=2"))
	if _, err := Open(key(1), ct, []byte("u=2|v=1")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("swapped routing metadata must not decrypt, got %v", err)
	}
}

func TestTamperedCiphertextFails(t *testing.T) {
	ct, _ := Seal(key(1), rand.Reader, []byte("integrity"), nil)
	for i := range ct {
		tampered := append([]byte(nil), ct...)
		tampered[i] ^= 0x40
		if _, err := Open(key(1), tampered, nil); err == nil {
			t.Fatalf("bit flip at %d not detected", i)
		}
	}
}

func TestTruncatedCiphertextFails(t *testing.T) {
	ct, _ := Seal(key(1), rand.Reader, []byte("hello"), nil)
	for n := 0; n < Overhead; n++ {
		if _, err := Open(key(1), ct[:n], nil); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("truncation to %d bytes not rejected: %v", n, err)
		}
	}
}

func TestNonceFreshness(t *testing.T) {
	k := key(3)
	ct1, _ := Seal(k, rand.Reader, []byte("same"), nil)
	ct2, _ := Seal(k, rand.Reader, []byte("same"), nil)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("two encryptions of the same plaintext should differ (fresh nonces)")
	}
}

func TestOverheadConstant(t *testing.T) {
	ct, _ := Seal(key(5), rand.Reader, make([]byte, 100), nil)
	if len(ct) != 100+Overhead {
		t.Fatalf("ciphertext length %d, want %d", len(ct), 100+Overhead)
	}
}

func BenchmarkSeal1KB(b *testing.B) {
	k := key(7)
	pt := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := Seal(k, rand.Reader, pt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
