package combine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/ring"
)

// Native fuzz target for the 0xDC combiner frame family. CI runs a
// -fuzztime smoke over the checked-in seed corpus
// (testdata/fuzz/FuzzCombineCodec, regenerated via
// WRITE_FUZZ_CORPUS=1 go test -run TestWriteCombineCorpus).

// combineCodecSeeds returns the seed frames: every frame kind in both
// codec versions' shapes, plus malformed mutations.
func combineCodecSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	encP := func(p Partial) []byte {
		b, err := EncodePartial(p)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	encR := func(r *RoundReport) []byte {
		b, err := EncodeReport(r)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	withTranscript := Partial{
		Shard: 3, Round: 12, Sum: ring.Vector{Bits: 16, Data: []uint64{5, 6, 7}},
		Survivors: []uint64{31, 32}, Dropped: []uint64{33}, RemovedComponents: []int{0, 2},
		HasTranscript: true,
	}
	for i := range withTranscript.TranscriptRoot {
		withTranscript.TranscriptRoot[i] = byte(i)
	}
	report := &RoundReport{
		Round: 12, Sum: ring.Vector{Bits: 16, Data: []uint64{9}},
		Contributing: []uint64{0, 1}, Missing: []uint64{2}, Degraded: true,
		Survivors: []uint64{1, 2, 3}, Dropped: []uint64{4},
		RemovedComponents: map[uint64][]int{1: {0, 1}},
		StaleRounds:       map[uint64]uint64{2: 11},
	}
	full := encP(withTranscript)
	seeds := [][]byte{
		EncodeHello(12, 3),
		full,
		encP(Partial{Shard: 0, Round: 1, Sum: ring.Vector{Bits: 20, Data: []uint64{1}}}),
		encR(report),
		encR(&RoundReport{Round: 1, Sum: ring.Vector{Bits: 16, Data: []uint64{0}},
			Contributing: []uint64{0}, Survivors: []uint64{1},
			RemovedComponents: map[uint64][]int{}}),
		full[:len(full)-1],                          // truncated transcript root
		full[:11],                                   // header only
		{combineMagic, tagPartial, 0x03},            // future version
		{0xD0, tagHello, 1, 0, 0, 0, 0, 0, 0, 0, 0}, // wrong magic
		append(append([]byte(nil), full...), 0x00),  // trailing byte
	}
	return seeds
}

// FuzzCombineCodec: the three decoders must never panic, and every frame
// any of them accepts must survive an encode/decode round trip unchanged.
func FuzzCombineCodec(f *testing.F) {
	for _, s := range combineCodecSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		if round, shard, err := DecodeHello(p); err == nil {
			r2, s2, err := DecodeHello(EncodeHello(round, shard))
			if err != nil || r2 != round || s2 != shard {
				t.Fatalf("hello round trip diverged: (%d,%d,%v)", r2, s2, err)
			}
		}
		if pt, err := DecodePartial(p); err == nil {
			re, err := EncodePartial(pt)
			if err != nil {
				t.Fatalf("accepted partial does not re-encode: %v", err)
			}
			pt2, err := DecodePartial(re)
			if err != nil {
				t.Fatalf("re-encoded partial does not decode: %v", err)
			}
			if !reflect.DeepEqual(pt, pt2) {
				t.Fatalf("partial round trip diverged:\n%+v\n%+v", pt, pt2)
			}
		}
		if r, err := DecodeReport(p); err == nil {
			re, err := EncodeReport(r)
			if err != nil {
				t.Fatalf("accepted report does not re-encode: %v", err)
			}
			r2, err := DecodeReport(re)
			if err != nil {
				t.Fatalf("re-encoded report does not decode: %v", err)
			}
			if !reflect.DeepEqual(r, r2) {
				t.Fatalf("report round trip diverged:\n%+v\n%+v", r, r2)
			}
		}
	})
}

func writeFuzzCorpus(t *testing.T, fuzzName string, seeds [][]byte) {
	t.Helper()
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the checked-in seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteCombineCorpus(t *testing.T) {
	writeFuzzCorpus(t, "FuzzCombineCodec", combineCodecSeeds(t))
}
