package combine

import (
	"errors"
	"testing"

	"repro/internal/ring"
)

func vec(bits uint, data ...uint64) ring.Vector {
	return ring.Vector{Bits: bits, Data: data}
}

func partial(shard, round uint64, data ...uint64) Partial {
	return Partial{
		Shard: shard, Round: round, Sum: vec(16, data...),
		Survivors: []uint64{shard * 10, shard*10 + 1}, Dropped: []uint64{shard*10 + 2},
	}
}

func TestCombinerFoldsAllShards(t *testing.T) {
	c, err := New(7, []uint64{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s < 3; s++ {
		p := partial(s, 7, s+1, s+2)
		p.RemovedComponents = []int{int(s)}
		if err := c.Add(p); err != nil {
			t.Fatalf("add shard %d: %v", s, err)
		}
	}
	if !c.QuorumMet() {
		t.Fatal("quorum not met with all partials")
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded || len(r.Missing) != 0 {
		t.Fatalf("full fold reported degraded: %+v", r)
	}
	if want := []uint64{6, 9}; r.Sum.Data[0] != want[0] || r.Sum.Data[1] != want[1] {
		t.Fatalf("sum = %v, want %v", r.Sum.Data, want)
	}
	if len(r.Survivors) != 6 || r.Survivors[0] != 0 || r.Survivors[5] != 21 {
		t.Fatalf("merged survivors = %v", r.Survivors)
	}
	if len(r.RemovedComponents) != 3 || r.RemovedComponents[2][0] != 2 {
		t.Fatalf("removal accounting = %v", r.RemovedComponents)
	}
}

func TestCombinerDegradedAtQuorum(t *testing.T) {
	c, err := New(3, []uint64{0, 1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint64{0, 1} {
		if err := c.Add(partial(s, 3, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if c.QuorumMet() {
		t.Fatal("quorum met at 2 of 3")
	}
	if _, err := c.Seal(); err == nil {
		t.Fatal("seal below quorum succeeded")
	}
	if err := c.Add(partial(3, 3, 5)); err != nil {
		t.Fatal(err)
	}
	if !c.QuorumMet() {
		t.Fatal("quorum not met at 3 of 3")
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("missing shard did not degrade the report")
	}
	if len(r.Missing) != 1 || r.Missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", r.Missing)
	}
	if len(r.Contributing) != 3 || r.Sum.Data[0] != 15 {
		t.Fatalf("contributing = %v sum = %v", r.Contributing, r.Sum.Data)
	}
}

func TestCombinerRejectsDupStaleUnknown(t *testing.T) {
	c, err := New(5, []uint64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(0, 4, 1)); !errors.Is(err, ErrStalePartial) {
		t.Fatalf("stale partial: %v", err)
	}
	if err := c.Add(partial(9, 5, 1)); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard: %v", err)
	}
	if err := c.Add(partial(0, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(0, 5, 2)); !errors.Is(err, ErrDuplicatePartial) {
		t.Fatalf("duplicate partial: %v", err)
	}
	// The rejected duplicate must not have clobbered the first fold.
	if err := c.Add(partial(1, 5, 10)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum.Data[0] != 11 {
		t.Fatalf("sum = %d, want 11 (duplicate must be discarded)", r.Sum.Data[0])
	}
}

// TestCombinerSingleShardDegenerate pins the S=1 plan: a one-shard
// topology is legal (the flat deployment expressed through the sharded
// machinery) and folds to exactly that shard's partial, clean.
func TestCombinerSingleShardDegenerate(t *testing.T) {
	c, err := New(9, []uint64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.QuorumMet() {
		t.Fatal("quorum met with no partials")
	}
	if err := c.Add(partial(0, 9, 4, 5)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded || len(r.Missing) != 0 || len(r.Contributing) != 1 {
		t.Fatalf("degenerate fold: %+v", r)
	}
	if r.Sum.Data[0] != 4 || r.Sum.Data[1] != 5 {
		t.Fatalf("sum = %v, want the single partial verbatim", r.Sum.Data)
	}
}

// TestCombinerQuorumEqualsShards pins the strictest quorum: with
// quorum == S every shard is load-bearing — one missing partial aborts,
// and only the full set seals (then necessarily clean).
func TestCombinerQuorumEqualsShards(t *testing.T) {
	c, err := New(6, []uint64{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint64{0, 1} {
		if err := c.Add(partial(s, 6, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if c.QuorumMet() {
		t.Fatal("quorum met at 2 of 3 with quorum=S")
	}
	if _, err := c.Seal(); err == nil {
		t.Fatal("seal succeeded one shard short of a full quorum")
	}
	if err := c.Add(partial(2, 6, 1)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded || len(r.Missing) != 0 {
		t.Fatalf("full-quorum seal degraded: %+v", r)
	}
}

// TestCombinerAllShardsDead pins the abort path: zero partials can never
// seal, whatever the quorum — there is nothing to fold.
func TestCombinerAllShardsDead(t *testing.T) {
	for _, quorum := range []int{0, 1, 2} {
		c, err := New(8, []uint64{0, 1}, quorum)
		if err != nil {
			t.Fatal(err)
		}
		if c.QuorumMet() {
			t.Fatalf("quorum %d met with zero partials", quorum)
		}
		if _, err := c.Seal(); err == nil {
			t.Fatalf("quorum %d sealed an empty round", quorum)
		}
	}
}

// TestCombinerRejectsPartialAfterSeal pins the post-seal path: the
// report is final, so a late partial — even a first-time, otherwise
// valid one — is a named ErrRoundSealed, and a re-Seal is not silently
// different from the shipped report.
func TestCombinerRejectsPartialAfterSeal(t *testing.T) {
	c, err := New(4, []uint64{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(0, 4, 3)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || len(r.Missing) != 1 || r.Missing[0] != 1 {
		t.Fatalf("quorum-1 seal: %+v", r)
	}
	// The missing shard shows up late — and a duplicate of a folded one
	// does too. Both are ErrRoundSealed now, not ErrDuplicate/silent fold.
	if err := c.Add(partial(1, 4, 9)); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("late first partial after seal: %v, want ErrRoundSealed", err)
	}
	if err := c.Add(partial(0, 4, 3)); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("duplicate after seal: %v, want ErrRoundSealed", err)
	}
	if c.Contributed() != 1 {
		t.Fatalf("post-seal adds mutated the fold: %d contributions", c.Contributed())
	}
}

// TestCombinerStaleRoundsSurfaced pins the satellite fix: a stale
// partial is a named ErrStalePartial at Add, the shard and its claimed
// round are surfaced in RoundReport.StaleRounds (not a silent degrade),
// and a below-quorum abort caused by staleness says so.
func TestCombinerStaleRoundsSurfaced(t *testing.T) {
	c, err := New(12, []uint64{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 2 is a round behind; shard 0 replays an even older round.
	if err := c.Add(partial(2, 11, 7)); !errors.Is(err, ErrStalePartial) {
		t.Fatalf("stale partial: %v, want ErrStalePartial", err)
	}
	if err := c.Add(partial(0, 3, 7)); !errors.Is(err, ErrStalePartial) {
		t.Fatalf("stale partial: %v, want ErrStalePartial", err)
	}
	// Shard 0 recovers with its real partial; shard 1 contributes too.
	if err := c.Add(partial(0, 12, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(1, 12, 2)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StaleRounds) != 2 || r.StaleRounds[2] != 11 || r.StaleRounds[0] != 3 {
		t.Fatalf("StaleRounds = %v, want {2:11 0:3}", r.StaleRounds)
	}
	if !r.Degraded || len(r.Missing) != 1 || r.Missing[0] != 2 {
		t.Fatalf("stale shard 2 not reported missing: %+v", r)
	}

	// Below quorum with stales on the books: the abort error must name
	// the stale arrivals and wrap ErrStalePartial so callers can tell
	// "dead shards" from "live shards a round behind".
	c2, err := New(20, []uint64{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Add(partial(0, 19, 1)); !errors.Is(err, ErrStalePartial) {
		t.Fatal(err)
	}
	_, err = c2.Seal()
	if !errors.Is(err, ErrStalePartial) {
		t.Fatalf("below-quorum seal with stales: %v, want to wrap ErrStalePartial", err)
	}

	// Below quorum with no stales stays the plain abort.
	c3, err := New(21, []uint64{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c3.Seal()
	if err == nil || errors.Is(err, ErrStalePartial) {
		t.Fatalf("below-quorum seal without stales: %v, want a plain abort", err)
	}
}

func TestCombinerRejectsGeometryMismatch(t *testing.T) {
	c, _ := New(1, []uint64{0, 1}, 0)
	if err := c.Add(Partial{Shard: 0, Round: 1, Sum: vec(16, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Partial{Shard: 1, Round: 1, Sum: vec(16, 1)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := c.Add(Partial{Shard: 1, Round: 1, Sum: vec(8, 1, 2)}); err == nil {
		t.Fatal("ring width mismatch accepted")
	}
	if err := c.Add(Partial{Shard: 1, Round: 1}); err == nil {
		t.Fatal("empty partial accepted")
	}
}
