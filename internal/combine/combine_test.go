package combine

import (
	"errors"
	"testing"

	"repro/internal/ring"
)

func vec(bits uint, data ...uint64) ring.Vector {
	return ring.Vector{Bits: bits, Data: data}
}

func partial(shard, round uint64, data ...uint64) Partial {
	return Partial{
		Shard: shard, Round: round, Sum: vec(16, data...),
		Survivors: []uint64{shard * 10, shard*10 + 1}, Dropped: []uint64{shard*10 + 2},
	}
}

func TestCombinerFoldsAllShards(t *testing.T) {
	c, err := New(7, []uint64{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s < 3; s++ {
		p := partial(s, 7, s+1, s+2)
		p.RemovedComponents = []int{int(s)}
		if err := c.Add(p); err != nil {
			t.Fatalf("add shard %d: %v", s, err)
		}
	}
	if !c.QuorumMet() {
		t.Fatal("quorum not met with all partials")
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded || len(r.Missing) != 0 {
		t.Fatalf("full fold reported degraded: %+v", r)
	}
	if want := []uint64{6, 9}; r.Sum.Data[0] != want[0] || r.Sum.Data[1] != want[1] {
		t.Fatalf("sum = %v, want %v", r.Sum.Data, want)
	}
	if len(r.Survivors) != 6 || r.Survivors[0] != 0 || r.Survivors[5] != 21 {
		t.Fatalf("merged survivors = %v", r.Survivors)
	}
	if len(r.RemovedComponents) != 3 || r.RemovedComponents[2][0] != 2 {
		t.Fatalf("removal accounting = %v", r.RemovedComponents)
	}
}

func TestCombinerDegradedAtQuorum(t *testing.T) {
	c, err := New(3, []uint64{0, 1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint64{0, 1} {
		if err := c.Add(partial(s, 3, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if c.QuorumMet() {
		t.Fatal("quorum met at 2 of 3")
	}
	if _, err := c.Seal(); err == nil {
		t.Fatal("seal below quorum succeeded")
	}
	if err := c.Add(partial(3, 3, 5)); err != nil {
		t.Fatal(err)
	}
	if !c.QuorumMet() {
		t.Fatal("quorum not met at 3 of 3")
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("missing shard did not degrade the report")
	}
	if len(r.Missing) != 1 || r.Missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", r.Missing)
	}
	if len(r.Contributing) != 3 || r.Sum.Data[0] != 15 {
		t.Fatalf("contributing = %v sum = %v", r.Contributing, r.Sum.Data)
	}
}

func TestCombinerRejectsDupStaleUnknown(t *testing.T) {
	c, err := New(5, []uint64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(0, 4, 1)); !errors.Is(err, ErrStalePartial) {
		t.Fatalf("stale partial: %v", err)
	}
	if err := c.Add(partial(9, 5, 1)); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard: %v", err)
	}
	if err := c.Add(partial(0, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(partial(0, 5, 2)); !errors.Is(err, ErrDuplicatePartial) {
		t.Fatalf("duplicate partial: %v", err)
	}
	// The rejected duplicate must not have clobbered the first fold.
	if err := c.Add(partial(1, 5, 10)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum.Data[0] != 11 {
		t.Fatalf("sum = %d, want 11 (duplicate must be discarded)", r.Sum.Data[0])
	}
}

func TestCombinerRejectsGeometryMismatch(t *testing.T) {
	c, _ := New(1, []uint64{0, 1}, 0)
	if err := c.Add(Partial{Shard: 0, Round: 1, Sum: vec(16, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Partial{Shard: 1, Round: 1, Sum: vec(16, 1)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := c.Add(Partial{Shard: 1, Round: 1, Sum: vec(8, 1, 2)}); err == nil {
		t.Fatal("ring width mismatch accepted")
	}
	if err := c.Add(Partial{Shard: 1, Round: 1}); err == nil {
		t.Fatal("empty partial accepted")
	}
}
