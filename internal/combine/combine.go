// Package combine implements the root combiner of the two-level sharded
// aggregation topology: S shard aggregators each run a full engine-backed
// secure-aggregation round over their sub-roster and emit a masked partial
// sum plus survivor/noise accounting; the combiner folds the partials into
// the round aggregate with quorum semantics.
//
// Why per-shard partial sums are sound (the paper's XNoise decomposition):
// within one shard, every pairwise mask cancels in the shard's own sum —
// the mask graph never crosses a shard boundary, because each shard runs a
// complete protocol instance over exactly its sub-roster. Dropout
// reconstruction, churn taint and per-edge re-key are likewise shard-local.
// What *adds* across shards is the XNoise: each shard enforces an additive
// per-shard noise target, and since independent Skellam noise is closed
// under addition, S shards at target μ/S compose to the central target μ.
// The combiner therefore only ever needs modular vector addition
// (ring.AddManyInPlace) plus bookkeeping — no cryptography crosses the
// combiner boundary.
//
// Degraded rounds: a shard whose partial never arrives (crash, partition,
// deadline) is not an abort. As long as Quorum partials arrived, Seal
// produces the fold over the contributing shards and the RoundReport names
// the missing ones — the aggregate is simply over a smaller cohort, exactly
// like a client dropout one level down. See ARCHITECTURE.md ("Sharded
// topology") and PROTOCOL.md for the combiner frame family
// (engine.TagShardHello/TagShardPartial/TagCombineReport).
package combine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ring"
)

// Partial is one shard aggregator's sealed contribution to a round: the
// shard cohort's fully unmasked, noise-adjusted ring sum plus the
// accounting the combiner folds into the round report.
type Partial struct {
	// Shard identifies the shard aggregator (its id on the combiner
	// connection).
	Shard uint64
	// Round is the combiner-level round the partial belongs to; a
	// mismatch is a stale partial (ErrStalePartial).
	Round uint64
	// Sum is the shard's aggregate: masks cancelled, dropout-adjusted,
	// excess XNoise components already removed shard-locally.
	Sum ring.Vector
	// Survivors and Dropped partition the shard's sub-roster by whether
	// the client's update is in Sum.
	Survivors []uint64
	Dropped   []uint64
	// RemovedComponents lists the XNoise component indices the shard
	// subtracted for its own dropout count (noise-share accounting; empty
	// without XNoise).
	RemovedComponents []int
	// TranscriptRoot, with HasTranscript, carries the shard's signed round
	// transcript root (internal/transcript): the combiner commits it as a
	// leaf of its own tree, which is what lets a client proof span both
	// tiers. Shards without the transcript layer leave it unset.
	TranscriptRoot [32]byte
	HasTranscript  bool
}

// Sentinel errors the drivers classify on. Both are soft at the wire
// layer: a duplicate or stale partial frame is discarded (the engine's
// replay idempotence plus these checks), never an abort.
var (
	ErrDuplicatePartial = errors.New("combine: duplicate partial for shard")
	ErrStalePartial     = errors.New("combine: stale partial (round mismatch)")
	ErrUnknownShard     = errors.New("combine: partial from unknown shard")
	// ErrRoundSealed names a partial arriving after Seal produced the
	// report. Unlike the soft sentinels above it is not a discard-and-move-
	// on condition for the combiner's own state machine — the report is
	// final — but wire drivers still classify it as soft (the late shard
	// already appears in Missing).
	ErrRoundSealed = errors.New("combine: partial after the round was sealed")
)

// Combiner folds shard partials for one round. It is not internally
// locked: the wire driver serializes Add through the engine's apply gate,
// and the in-process driver adds from a single goroutine.
type Combiner struct {
	round  uint64
	expect map[uint64]bool
	order  []uint64 // expected shard ids, ascending
	quorum int
	got    map[uint64]Partial
	// stale records round-mismatched partials by shard (shard → the round
	// the partial claimed), so a stale arrival is named in the RoundReport
	// instead of degrading silently: an operator reading the report can
	// tell "shard 3 is alive but a round behind" from "shard 3 is dead".
	stale map[uint64]uint64
	// sealed is set by Seal; a partial arriving afterwards is a hard
	// ErrRoundSealed (the report is already out — folding it would fork
	// the round's history).
	sealed bool
}

// New builds a combiner for one round over the given shard aggregator ids.
// quorum is the minimum number of contributing shards Seal accepts; 0
// means all of them (a missing shard then still degrades rather than
// aborts only if the caller lowers the quorum).
func New(round uint64, shardIDs []uint64, quorum int) (*Combiner, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("combine: no shards")
	}
	expect := make(map[uint64]bool, len(shardIDs))
	for _, id := range shardIDs {
		if expect[id] {
			return nil, fmt.Errorf("combine: duplicate shard id %d", id)
		}
		expect[id] = true
	}
	order := append([]uint64(nil), shardIDs...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if quorum <= 0 || quorum > len(shardIDs) {
		quorum = len(shardIDs)
	}
	return &Combiner{round: round, expect: expect, order: order, quorum: quorum,
		got: make(map[uint64]Partial, len(shardIDs))}, nil
}

// Add ingests one shard partial. Stale, duplicate and unknown-shard
// partials return their sentinel errors without mutating state; geometry
// mismatches (a shard disagreeing on ring width or dimension) are hard
// errors.
func (c *Combiner) Add(p Partial) error {
	if c.sealed {
		return fmt.Errorf("%w: shard %d", ErrRoundSealed, p.Shard)
	}
	if p.Round != c.round {
		if c.stale == nil {
			c.stale = make(map[uint64]uint64)
		}
		c.stale[p.Shard] = p.Round
		return fmt.Errorf("%w %d: got round %d, want %d", ErrStalePartial, p.Shard, p.Round, c.round)
	}
	if !c.expect[p.Shard] {
		return fmt.Errorf("%w %d", ErrUnknownShard, p.Shard)
	}
	if _, dup := c.got[p.Shard]; dup {
		return fmt.Errorf("%w %d", ErrDuplicatePartial, p.Shard)
	}
	if p.Sum.Data == nil {
		return fmt.Errorf("combine: shard %d partial carries no sum", p.Shard)
	}
	for _, q := range c.got {
		if q.Sum.Bits != p.Sum.Bits || q.Sum.Len() != p.Sum.Len() {
			return fmt.Errorf("combine: shard %d partial is %d×%db, shard %d sent %d×%db",
				p.Shard, p.Sum.Len(), p.Sum.Bits, q.Shard, q.Sum.Len(), q.Sum.Bits)
		}
		break // one representative suffices: earlier Adds enforced pairwise agreement
	}
	c.got[p.Shard] = p
	return nil
}

// Contributed reports how many shard partials have been folded in.
func (c *Combiner) Contributed() int { return len(c.got) }

// QuorumMet reports whether enough partials arrived for Seal to succeed.
// It matches the engine's predicate-quorum signature so the wire driver
// can end the collection stage the moment the fold is viable-and-complete.
func (c *Combiner) QuorumMet() bool { return len(c.got) >= c.quorum }

// StaleRounds returns the round-mismatched arrivals recorded so far
// (shard → the round its stale partial claimed).
func (c *Combiner) StaleRounds() map[uint64]uint64 {
	if len(c.stale) == 0 {
		return nil
	}
	out := make(map[uint64]uint64, len(c.stale))
	for k, v := range c.stale {
		out[k] = v
	}
	return out
}

// TranscriptRoots returns the transcript roots the contributing shards'
// partials carried (shard → root) — the leaves of the combiner-tier
// transcript tree. Shards without the transcript layer are absent.
func (c *Combiner) TranscriptRoots() map[uint64][32]byte {
	out := make(map[uint64][32]byte)
	for id, p := range c.got {
		if p.HasTranscript {
			out[id] = p.TranscriptRoot
		}
	}
	return out
}

// RoundReport is the combiner's output: the folded aggregate plus the
// shard- and client-level accounting. A Degraded report is a *successful*
// round over a reduced cohort — the two-level analogue of a client
// dropout.
type RoundReport struct {
	Round uint64
	// Sum is Σ over contributing shards' partials, mod 2^bits.
	Sum ring.Vector
	// Contributing and Missing partition the expected shard set by
	// whether a partial arrived in time; Degraded = len(Missing) > 0.
	Contributing []uint64
	Missing      []uint64
	Degraded     bool
	// Survivors and Dropped merge the contributing shards' client-level
	// accounting (sorted). Clients of missing shards appear in neither:
	// their shard's fate is reported at shard granularity above.
	Survivors []uint64
	Dropped   []uint64
	// RemovedComponents records each contributing shard's XNoise removal
	// accounting (shard id → component indices), so a DP auditor can
	// check the per-shard removals compose to the central contract.
	RemovedComponents map[uint64][]int
	// StaleRounds names the shards whose partials were discarded for a
	// round mismatch (shard → the round the stale partial claimed). Such a
	// shard also appears in Missing unless its real partial arrived later;
	// naming the mismatch here turns a silent degrade into a diagnosable
	// condition (ErrStalePartial's report-level counterpart).
	StaleRounds map[uint64]uint64
}

// Seal folds the collected partials. It fails only below quorum; missing
// shards above it degrade the report instead.
func (c *Combiner) Seal() (*RoundReport, error) {
	if len(c.got) < c.quorum {
		if len(c.stale) > 0 {
			return nil, fmt.Errorf("combine: %d of %d shard partials, quorum %d (%d stale arrivals discarded: %w)",
				len(c.got), len(c.order), c.quorum, len(c.stale), ErrStalePartial)
		}
		return nil, fmt.Errorf("combine: %d of %d shard partials, quorum %d", len(c.got), len(c.order), c.quorum)
	}
	c.sealed = true
	r := &RoundReport{Round: c.round, RemovedComponents: make(map[uint64][]int), StaleRounds: c.StaleRounds()}
	addends := make([]ring.Vector, 0, len(c.got))
	for _, id := range c.order {
		p, ok := c.got[id]
		if !ok {
			r.Missing = append(r.Missing, id)
			continue
		}
		r.Contributing = append(r.Contributing, id)
		addends = append(addends, p.Sum)
		r.Survivors = append(r.Survivors, p.Survivors...)
		r.Dropped = append(r.Dropped, p.Dropped...)
		if len(p.RemovedComponents) > 0 {
			r.RemovedComponents[id] = append([]int(nil), p.RemovedComponents...)
		}
	}
	r.Degraded = len(r.Missing) > 0
	r.Sum = addends[0].Clone()
	if err := r.Sum.AddManyInPlace(addends[1:]); err != nil {
		return nil, err
	}
	sort.Slice(r.Survivors, func(i, j int) bool { return r.Survivors[i] < r.Survivors[j] })
	sort.Slice(r.Dropped, func(i, j int) bool { return r.Dropped[i] < r.Dropped[j] })
	return r, nil
}
