package combine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ring"
	"repro/internal/transport"
)

// Binary codec for the combiner frame family, following the core/codec.go
// conventions: magic/tag/version prefix, little-endian length-prefixed
// sections, count-vs-payload validation before any allocation.
//
// Layout (all integers little-endian):
//
//	hello:   [magic][tagHello][ver][Round:8][Shard:8]
//	partial: [magic][tagPartial][ver][Round:8][Shard:8][Bits:1]
//	         [n:4][Sum: n×8] [n:4][Survivors: n×8] [n:4][Dropped: n×8]
//	         [n:4][RemovedComponents: n×8, as uint64]
//	         v2+: [hasTranscript:1][TranscriptRoot:32, when set]
//	report:  [magic][tagReport][ver][Round:8][Bits:1][flags:1]
//	         [n:4][Sum: n×8] [n:4][Contributing: n×8] [n:4][Missing: n×8]
//	         [n:4][Survivors: n×8] [n:4][Dropped: n×8]
//	         [n:4] n × ([shard:8][k:4][components: k×8])
//	         v2+: [n:4] n × ([shard:8][staleRound:8])
//	         (flags bit 0: Degraded)
//
// The magic byte (0xDC) keeps the family disjoint from the core codec
// (0xD0), the persisted sessions (0xDA) and the binary share bundles
// (0xDB), so a misrouted payload fails loudly. The version byte gates
// structural evolution the way persistVersion does for sessions: decoders
// accept versions ≤ theirs and reject the rest, so a new-layout combiner
// never silently mis-reads an old shard's partial or vice versa. Version
// 2 (this repo's verifiable-transcript PR) appends the shard transcript
// root to partials and the stale-round accounting to reports; v1 payloads
// still decode, with both absent.
const (
	combineMagic   = 0xDC
	tagHello       = 0x01
	tagPartial     = 0x02
	tagReport      = 0x03
	combineVersion = 2

	// maxCombineElems caps decoded slice lengths against hostile length
	// prefixes, mirroring core's maxWireElems (the transport frame cap is
	// the binding limit near the boundary).
	maxCombineElems = 1 << 25
)

func appendSlab(dst []byte, xs []uint64) ([]byte, error) {
	if len(xs) > maxCombineElems {
		return nil, fmt.Errorf("combine: slab of %d elements exceeds wire cap", len(xs))
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(xs)))
	dst = append(dst, cnt[:]...)
	return transport.AppendUint64sLE(dst, xs), nil
}

func decodeSlab(src []byte) ([]uint64, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("combine: slab header truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n > maxCombineElems {
		return nil, nil, fmt.Errorf("combine: declared slab of %d elements exceeds wire cap", n)
	}
	return transport.DecodeUint64sLE(src[4:], n)
}

func appendHeader(dst []byte, tag byte, round uint64) []byte {
	dst = append(dst, combineMagic, tag, combineVersion)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], round)
	return append(dst, b[:]...)
}

// decodeHeader validates magic/tag/version and returns (round, version,
// rest) — the version steers the optional v2+ trailing sections.
func decodeHeader(p []byte, tag byte, what string) (uint64, byte, []byte, error) {
	if len(p) < 11 || p[0] != combineMagic || p[1] != tag {
		return 0, 0, nil, fmt.Errorf("combine: not a %s payload", what)
	}
	v := p[2]
	if v < 1 || v > combineVersion {
		return 0, 0, nil, fmt.Errorf("combine: %s version %d, want <= %d", what, v, combineVersion)
	}
	return binary.LittleEndian.Uint64(p[3:]), v, p[11:], nil
}

// EncodeHello encodes the shard-online announcement.
func EncodeHello(round, shard uint64) []byte {
	out := appendHeader(make([]byte, 0, 19), tagHello, round)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], shard)
	return append(out, b[:]...)
}

// DecodeHello decodes a shard-online announcement, returning (round, shard).
func DecodeHello(p []byte) (uint64, uint64, error) {
	round, _, rest, err := decodeHeader(p, tagHello, "shard hello")
	if err != nil {
		return 0, 0, err
	}
	if len(rest) != 8 {
		return 0, 0, fmt.Errorf("combine: shard hello body is %d bytes, want 8", len(rest))
	}
	return round, binary.LittleEndian.Uint64(rest), nil
}

func intsToUint64s(ks []int) []uint64 {
	out := make([]uint64, len(ks))
	for i, k := range ks {
		out[i] = uint64(k)
	}
	return out
}

func uint64sToInts(xs []uint64) []int {
	if len(xs) == 0 {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// EncodePartial encodes one shard partial.
func EncodePartial(p Partial) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 24+8*(p.Sum.Len()+len(p.Survivors)+len(p.Dropped))), tagPartial, p.Round)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], p.Shard)
	out = append(out, b[:]...)
	out = append(out, byte(p.Sum.Bits))
	var err error
	if out, err = appendSlab(out, p.Sum.Data); err != nil {
		return nil, err
	}
	if out, err = appendSlab(out, p.Survivors); err != nil {
		return nil, err
	}
	if out, err = appendSlab(out, p.Dropped); err != nil {
		return nil, err
	}
	if out, err = appendSlab(out, intsToUint64s(p.RemovedComponents)); err != nil {
		return nil, err
	}
	if p.HasTranscript {
		out = append(out, 1)
		out = append(out, p.TranscriptRoot[:]...)
	} else {
		out = append(out, 0)
	}
	return out, nil
}

// DecodePartial decodes one shard partial.
func DecodePartial(p []byte) (Partial, error) {
	round, ver, rest, err := decodeHeader(p, tagPartial, "shard partial")
	if err != nil {
		return Partial{}, err
	}
	if len(rest) < 9 {
		return Partial{}, fmt.Errorf("combine: shard partial truncated")
	}
	out := Partial{Round: round, Shard: binary.LittleEndian.Uint64(rest)}
	bits := rest[8]
	if bits < 1 || bits > 63 {
		return Partial{}, fmt.Errorf("combine: shard partial ring width %d out of [1,63]", bits)
	}
	rest = rest[9:]
	var sum []uint64
	if sum, rest, err = decodeSlab(rest); err != nil {
		return Partial{}, fmt.Errorf("combine: shard partial sum: %w", err)
	}
	out.Sum = ring.Vector{Bits: uint(bits), Data: sum}
	if out.Survivors, rest, err = decodeSlab(rest); err != nil {
		return Partial{}, fmt.Errorf("combine: shard partial survivors: %w", err)
	}
	if out.Dropped, rest, err = decodeSlab(rest); err != nil {
		return Partial{}, fmt.Errorf("combine: shard partial dropped: %w", err)
	}
	var ks []uint64
	if ks, rest, err = decodeSlab(rest); err != nil {
		return Partial{}, fmt.Errorf("combine: shard partial removed components: %w", err)
	}
	out.RemovedComponents = uint64sToInts(ks)
	if ver >= 2 {
		if len(rest) < 1 {
			return Partial{}, fmt.Errorf("combine: shard partial transcript flag truncated")
		}
		switch rest[0] {
		case 0:
			rest = rest[1:]
		case 1:
			if len(rest) < 33 {
				return Partial{}, fmt.Errorf("combine: shard partial transcript root truncated")
			}
			out.HasTranscript = true
			copy(out.TranscriptRoot[:], rest[1:33])
			rest = rest[33:]
		default:
			return Partial{}, fmt.Errorf("combine: shard partial transcript flag %d", rest[0])
		}
	}
	if len(rest) != 0 {
		return Partial{}, fmt.Errorf("combine: shard partial: %d trailing bytes", len(rest))
	}
	return out, nil
}

// EncodeReport encodes the combiner's round report.
func EncodeReport(r *RoundReport) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 32+8*r.Sum.Len()), tagReport, r.Round)
	out = append(out, byte(r.Sum.Bits))
	var flags byte
	if r.Degraded {
		flags |= 1
	}
	out = append(out, flags)
	var err error
	for _, xs := range [][]uint64{r.Sum.Data, r.Contributing, r.Missing, r.Survivors, r.Dropped} {
		if out, err = appendSlab(out, xs); err != nil {
			return nil, err
		}
	}
	if len(r.RemovedComponents) > maxCombineElems {
		return nil, fmt.Errorf("combine: %d removal entries exceed wire cap", len(r.RemovedComponents))
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(r.RemovedComponents)))
	out = append(out, cnt[:]...)
	shards := make([]uint64, 0, len(r.RemovedComponents))
	for shard := range r.RemovedComponents {
		shards = append(shards, shard)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] }) // deterministic encoding
	for _, shard := range shards {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], shard)
		out = append(out, b[:]...)
		if out, err = appendSlab(out, intsToUint64s(r.RemovedComponents[shard])); err != nil {
			return nil, err
		}
	}
	if len(r.StaleRounds) > maxCombineElems {
		return nil, fmt.Errorf("combine: %d stale entries exceed wire cap", len(r.StaleRounds))
	}
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(r.StaleRounds)))
	out = append(out, cnt[:]...)
	staleShards := make([]uint64, 0, len(r.StaleRounds))
	for shard := range r.StaleRounds {
		staleShards = append(staleShards, shard)
	}
	sort.Slice(staleShards, func(i, j int) bool { return staleShards[i] < staleShards[j] })
	for _, shard := range staleShards {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], shard)
		out = append(out, b[:]...)
		binary.LittleEndian.PutUint64(b[:], r.StaleRounds[shard])
		out = append(out, b[:]...)
	}
	return out, nil
}

// DecodeReport decodes a combiner round report.
func DecodeReport(p []byte) (*RoundReport, error) {
	round, ver, rest, err := decodeHeader(p, tagReport, "round report")
	if err != nil {
		return nil, err
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("combine: round report truncated")
	}
	r := &RoundReport{Round: round, Degraded: rest[1]&1 != 0}
	bits := rest[0]
	if bits < 1 || bits > 63 {
		return nil, fmt.Errorf("combine: round report ring width %d out of [1,63]", bits)
	}
	rest = rest[2:]
	var sum []uint64
	if sum, rest, err = decodeSlab(rest); err != nil {
		return nil, fmt.Errorf("combine: round report sum: %w", err)
	}
	r.Sum = ring.Vector{Bits: uint(bits), Data: sum}
	for _, dst := range []*[]uint64{&r.Contributing, &r.Missing, &r.Survivors, &r.Dropped} {
		if *dst, rest, err = decodeSlab(rest); err != nil {
			return nil, fmt.Errorf("combine: round report: %w", err)
		}
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("combine: round report removal header truncated")
	}
	n := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if n > maxCombineElems {
		return nil, fmt.Errorf("combine: declared %d removal entries exceed wire cap", n)
	}
	// Each entry costs at least a shard id plus an empty slab header.
	if n > 0 && n > len(rest)/(8+4) {
		return nil, fmt.Errorf("combine: declared %d removal entries exceed payload", n)
	}
	r.RemovedComponents = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("combine: removal entry %d truncated", i)
		}
		shard := binary.LittleEndian.Uint64(rest)
		if _, dup := r.RemovedComponents[shard]; dup {
			return nil, fmt.Errorf("combine: duplicate removal entry for shard %d", shard)
		}
		var ks []uint64
		if ks, rest, err = decodeSlab(rest[8:]); err != nil {
			return nil, fmt.Errorf("combine: removal entry %d: %w", i, err)
		}
		r.RemovedComponents[shard] = uint64sToInts(ks)
	}
	if ver >= 2 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("combine: round report stale header truncated")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > maxCombineElems {
			return nil, fmt.Errorf("combine: declared %d stale entries exceed wire cap", n)
		}
		if n > len(rest)/16 {
			return nil, fmt.Errorf("combine: declared %d stale entries exceed payload", n)
		}
		if n > 0 {
			r.StaleRounds = make(map[uint64]uint64, n)
			for i := 0; i < n; i++ {
				shard := binary.LittleEndian.Uint64(rest)
				if _, dup := r.StaleRounds[shard]; dup {
					return nil, fmt.Errorf("combine: duplicate stale entry for shard %d", shard)
				}
				r.StaleRounds[shard] = binary.LittleEndian.Uint64(rest[8:])
				rest = rest[16:]
			}
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("combine: round report: %d trailing bytes", len(rest))
	}
	return r, nil
}
