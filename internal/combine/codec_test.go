package combine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ring"
)

func TestHelloCodecRoundTrip(t *testing.T) {
	p := EncodeHello(42, 3)
	round, shard, err := DecodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if round != 42 || shard != 3 {
		t.Fatalf("decoded (%d, %d), want (42, 3)", round, shard)
	}
}

func TestPartialCodecRoundTrip(t *testing.T) {
	cases := []Partial{
		{Shard: 2, Round: 9, Sum: vec(16, 1, 2, 3),
			Survivors: []uint64{1, 2}, Dropped: []uint64{3}, RemovedComponents: []int{0, 4}},
		{Shard: 0, Round: 0, Sum: vec(63, 1<<62+5)},
	}
	for i, in := range cases {
		p, err := EncodePartial(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodePartial(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Shard != in.Shard || out.Round != in.Round || out.Sum.Bits != in.Sum.Bits {
			t.Fatalf("case %d: header mismatch: %+v", i, out)
		}
		if !reflect.DeepEqual(out.Sum.Data, in.Sum.Data) {
			t.Fatalf("case %d: sum mismatch", i)
		}
		if len(out.Survivors) != len(in.Survivors) || len(out.Dropped) != len(in.Dropped) ||
			len(out.RemovedComponents) != len(in.RemovedComponents) {
			t.Fatalf("case %d: accounting mismatch: %+v", i, out)
		}
	}
}

func TestReportCodecRoundTrip(t *testing.T) {
	in := &RoundReport{
		Round: 5, Sum: vec(16, 7, 8), Degraded: true,
		Contributing: []uint64{0, 2}, Missing: []uint64{1},
		Survivors: []uint64{10, 11, 30}, Dropped: []uint64{12},
		RemovedComponents: map[uint64][]int{0: {1, 2}, 2: {3}},
	}
	p, err := EncodeReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestCodecMalformed exercises the hostile-input paths: every truncation
// boundary, wrong magic/tag, future version, oversized counts, trailing
// garbage. Decoders must error, never panic or over-allocate.
func TestCodecMalformed(t *testing.T) {
	good, err := EncodePartial(Partial{Shard: 1, Round: 2, Sum: vec(16, 1, 2),
		Survivors: []uint64{1}, Dropped: []uint64{2}, RemovedComponents: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodePartial(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodePartial(append(good[:len(good):len(good)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0xD0 // core codec magic, not ours
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[2] = combineVersion + 1
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("future version accepted")
	}
	// Hostile sum count: claims 2^25 elements over a tiny payload.
	bad = append([]byte(nil), good[:20]...)
	bad[19] = 0xFF
	bad = append(bad, 0xFF, 0xFF, 0x01)
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("hostile slab count accepted")
	}

	report, err := EncodeReport(&RoundReport{Round: 1, Sum: vec(16, 1),
		Contributing: []uint64{0}, RemovedComponents: map[uint64][]int{0: {1}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(report); cut++ {
		if _, err := DecodeReport(report[:cut]); err == nil {
			t.Fatalf("report truncation at %d accepted", cut)
		}
	}
	for cut := 0; cut < 19; cut++ {
		if _, _, err := DecodeHello(EncodeHello(1, 2)[:cut]); err == nil {
			t.Fatalf("hello truncation at %d accepted", cut)
		}
	}
}

// TestCodecFuzzSeeded throws deterministic random bytes at the decoders:
// they must return errors (or valid values), never panic.
func TestCodecFuzzSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		if rng.Intn(2) == 0 { // half the corpus gets a plausible prefix
			buf = append([]byte{combineMagic, byte(1 + rng.Intn(3)), combineVersion}, buf...)
		}
		DecodePartial(buf)
		DecodeReport(buf)
		DecodeHello(buf)
	}
	// Random valid partials round-trip exactly.
	for i := 0; i < 200; i++ {
		in := Partial{
			Shard: rng.Uint64(), Round: rng.Uint64(),
			Sum: ring.Vector{Bits: uint(1 + rng.Intn(63)), Data: make([]uint64, 1+rng.Intn(63))},
		}
		for j := range in.Sum.Data {
			in.Sum.Data[j] = rng.Uint64() & in.Sum.Mask()
		}
		for j := 0; j < rng.Intn(8); j++ {
			in.Survivors = append(in.Survivors, rng.Uint64())
		}
		for j := 0; j < rng.Intn(4); j++ {
			in.RemovedComponents = append(in.RemovedComponents, rng.Intn(32))
		}
		p, err := EncodePartial(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodePartial(p)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if out.Shard != in.Shard || !reflect.DeepEqual(out.Sum.Data, in.Sum.Data) ||
			!reflect.DeepEqual(out.RemovedComponents, in.RemovedComponents) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
	}
}
