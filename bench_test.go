package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (DESIGN.md §4 maps ids to experiments). Each benchmark runs
// the experiment at QuickScale and prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Full-fidelity runs:
//
//	go run ./cmd/dordis-bench -exp all -scale paper
//
// Component micro-benchmarks live next to their packages.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hotpath"
	"repro/internal/prg"
	"repro/internal/ring"
)

func benchExperiment(b *testing.B, id string, sc experiments.Scale) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.Run(id, &buf, sc); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintf(os.Stdout, "\n===== %s =====\n%s", id, buf.String())
		}
	}
}

// BenchmarkFig1bPrivacyUtilityCIFAR10 regenerates Figure 1b: privacy cost
// and accuracy of Orig/Early/Con8/Con5/Con2 under volatile dropout.
func BenchmarkFig1bPrivacyUtilityCIFAR10(b *testing.B) {
	benchExperiment(b, "fig1b", experiments.QuickScale())
}

// BenchmarkFig1cPrivacyUtilityCIFAR100 regenerates Figure 1c (the
// CIFAR-100-like task).
func BenchmarkFig1cPrivacyUtilityCIFAR100(b *testing.B) {
	benchExperiment(b, "fig1c", experiments.QuickScale())
}

// BenchmarkFig1dPrivacyVsDropout regenerates Figure 1d: Orig's final ε vs
// dropout rate for budgets 3/6/9 (exact accounting).
func BenchmarkFig1dPrivacyVsDropout(b *testing.B) {
	benchExperiment(b, "fig1d", experiments.QuickScale())
}

// BenchmarkFig2SecAggCostShare regenerates Figure 2: the round-time share
// of SecAgg/SecAgg+ at 32/48/64 clients.
func BenchmarkFig2SecAggCostShare(b *testing.B) {
	benchExperiment(b, "fig2", experiments.QuickScale())
}

// BenchmarkFig8PrivacyConsumption regenerates Figure 8: budget consumption
// of Orig vs XNoise across dropout rates on the three tasks.
func BenchmarkFig8PrivacyConsumption(b *testing.B) {
	benchExperiment(b, "fig8", experiments.QuickScale())
}

// BenchmarkFig9RoundToAccuracy regenerates Figure 9: learning curves at
// 20% dropout.
func BenchmarkFig9RoundToAccuracy(b *testing.B) {
	benchExperiment(b, "fig9", experiments.QuickScale())
}

// BenchmarkFig10PipelineSpeedup regenerates Figure 10: plain vs pipelined
// round times across workloads × protocols × schemes × dropout.
func BenchmarkFig10PipelineSpeedup(b *testing.B) {
	benchExperiment(b, "fig10", experiments.QuickScale())
}

// BenchmarkTable1StageGraph regenerates Table 1: the stage decomposition.
func BenchmarkTable1StageGraph(b *testing.B) {
	benchExperiment(b, "table1", experiments.QuickScale())
}

// BenchmarkTable2FinalUtility regenerates Table 2: final accuracy (or
// perplexity) of Orig vs XNoise across dropout rates.
func BenchmarkTable2FinalUtility(b *testing.B) {
	benchExperiment(b, "table2", experiments.Scale{Rounds: 12, PerClient: 20})
}

// BenchmarkTable3NetworkFootprint regenerates Table 3: rebasing vs XNoise
// per-client network footprint.
func BenchmarkTable3NetworkFootprint(b *testing.B) {
	benchExperiment(b, "table3", experiments.QuickScale())
}

// BenchmarkAppendixCOptimalChunks regenerates the Appendix C ablation: the
// makespan sweep over m and the solver's pick.
func BenchmarkAppendixCOptimalChunks(b *testing.B) {
	benchExperiment(b, "appendixc", experiments.QuickScale())
}

// BenchmarkAblationDPModels regenerates ablD: the §2.2 trichotomy —
// central vs local vs distributed DP on one training task.
func BenchmarkAblationDPModels(b *testing.B) {
	benchExperiment(b, "ablD", experiments.Scale{Rounds: 12, PerClient: 20})
}

// BenchmarkAblationTolerance regenerates ablT: what the dropout-tolerance
// knob T costs in per-client noise and share traffic (§3.2 design choice).
func BenchmarkAblationTolerance(b *testing.B) {
	benchExperiment(b, "ablT", experiments.QuickScale())
}

// BenchmarkAblationIntervention regenerates ablI: chunk planning with and
// without the Eq.-3 intervention term β₂ (§4.2 design choice).
func BenchmarkAblationIntervention(b *testing.B) {
	benchExperiment(b, "ablI", experiments.QuickScale())
}

// BenchmarkAblationProtocols regenerates ablP: per-client upload of
// SecAgg / SecAgg+ / SecAgg+XNoise / LightSecAgg (§2.3.2 baselines).
func BenchmarkAblationProtocols(b *testing.B) {
	benchExperiment(b, "ablP", experiments.QuickScale())
}

// BenchmarkAblationMechanisms regenerates ablS: DSkellam vs DDGauss
// central noise at the same privacy budget (§5 mechanism choice).
func BenchmarkAblationMechanisms(b *testing.B) {
	benchExperiment(b, "ablS", experiments.QuickScale())
}

// BenchmarkAblationShuffle regenerates ablU: the shuffle-model alternative
// vs SecAgg-based distributed DP (§2.2 aside).
func BenchmarkAblationShuffle(b *testing.B) {
	benchExperiment(b, "ablU", experiments.QuickScale())
}

// BenchmarkMulticoreMatrix sweeps GOMAXPROCS over the protocol hot
// paths (internal/hotpath — the same workloads dordis-bench -hotpath
// runs): Skellam sampling under both noise epochs, seekable-CTR
// segmented mask expansion at large dim, and the whole amortized
// XNoise round. Sampling is single-threaded, so its rows should be
// flat across procs — they pin that the matrix isolates the parallel
// paths rather than measuring scheduler noise. Recorded numbers live
// in BENCH_SECAGG_HOTPATH.json (pr7 entries); note that on a 1-core
// CI box the procs>1 rows timeshare, so only ratios at matching procs
// are meaningful there.
func BenchmarkMulticoreMatrix(b *testing.B) {
	const (
		skellamDim = 4096
		skellamMu  = 16
		maskDim    = 1 << 16
		roundN     = 16
		roundDim   = 16384
	)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, epoch := range []uint64{0, 1} {
				b.Run(fmt.Sprintf("skellam/mu=%d/epoch=%d", skellamMu, epoch), func(b *testing.B) {
					s := prg.NewStream(prg.NewSeed([]byte("multicore-skellam")))
					out := make([]int64, skellamDim)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := hotpath.Skellam(epoch, s, skellamMu, out); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(skellamDim), "ns/elem")
				})
			}
			b.Run(fmt.Sprintf("maskexpand/dim=%d", maskDim), func(b *testing.B) {
				v := ring.NewVector(20, maskDim)
				s := prg.NewStream(prg.NewSeed([]byte("multicore-mask")))
				b.SetBytes(int64(maskDim) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := hotpath.MaskExpand(v, s, procs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(maskDim), "ns/elem")
			})
			b.Run(fmt.Sprintf("round/n=%d/dim=%d", roundN, roundDim), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := hotpath.Round(roundN, roundDim, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
